package workloads

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/sim"
)

// Serving-load key streams. Where Suite describes the paper's trace-level
// analogs (set-indexed cache block addresses), these generate *cache keys*
// for driving a key-value service: cmd/stemload points them at stemd and
// measures hit rates end to end. The shapes mirror the stemcache package's
// benchmark streams so the service-level numbers are comparable to the
// in-process ones:
//
//   - "zipf": a skewed stream over a keyspace 8x the cache's capacity —
//     the classic cacheable web workload.
//   - "scan": a relentless sequential sweep over twice the capacity — the
//     LRU-worst-case loop nothing fits.
//   - "mixed": 50/50 interleave of a Zipfian hot set (capacity/4 keys,
//     disjoint from the scan range) with the scan — the access mix set-level
//     BIP dueling is built for, where STEM should beat a sharded LRU.
//
// Streams are deterministic functions of their parameters: equal parameters
// give byte-identical key sequences, so a STEM server and a baseline server
// can be driven with exactly the same load.

//   - "hotspot-shift": a Zipfian hot set that jumps to a disjoint key
//     partition every HotspotShiftEvery(capacity) draws. Against a cluster,
//     each partition hashes to a different node mix, so the load (and the
//     capacity demand it induces) migrates between nodes mid-run — the
//     workload the STEM-style node rebalancer exists for.

// KeyDists lists the serving key distributions NewKeyStream accepts.
func KeyDists() []string { return []string{"zipf", "scan", "mixed", "hotspot-shift"} }

// HotspotShiftEvery is the partition dwell time of the "hotspot-shift"
// stream, in draws per worker: long enough for a cache sized near capacity
// to converge on the hot set, short enough that a run of a few multiples
// sees several shifts.
func HotspotShiftEvery(capacity int) int { return capacity * 6 }

// NewKeyStream returns a deterministic key generator for a single worker
// driving a cache of the given entry capacity: NewWorkerKeyStream with the
// whole keyspace as one partition.
func NewKeyStream(dist string, capacity int, seed uint64) (func() string, error) {
	return NewWorkerKeyStream(dist, capacity, seed, 0, 1)
}

// NewWorkerKeyStream returns worker w's deterministic key generator out of a
// group of `workers` concurrent closed loops (0 <= w < workers). The Zipfian
// keyspaces are shared — every worker hammers the same hot keys, as
// concurrent clients of one cache do — but the sequential scan range is
// partitioned: worker w sweeps only its 1/workers slice. Without the
// partition, W workers sweeping the same range act as W staggered pointers
// whose inter-pointer gap (span/W keys) fits in the cache, quietly turning
// the thrash stream into a reusable one; partitioned, the aggregate is one
// coherent sweep and each scan key's reuse distance stays at the full span.
//
// Each worker must own its stream (the generator is not safe for concurrent
// use); give workers distinct seeds for independent Zipf draws.
func NewWorkerKeyStream(dist string, capacity int, seed uint64, w, workers int) (func() string, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("workloads: key stream needs a positive capacity, got %d", capacity)
	}
	if workers <= 0 || w < 0 || w >= workers {
		return nil, fmt.Errorf("workloads: worker %d of %d out of range", w, workers)
	}
	r := sim.NewRNG(seed)
	span := capacity * 2
	sweep := newSweep(span, seed, w, workers)
	switch dist {
	case "zipf":
		n := capacity * 8
		return func() string { return "z" + strconv.Itoa(zipfKeyRank(r, n)) }, nil
	case "scan":
		return sweep, nil
	case "mixed":
		hot := capacity / 4
		if hot < 1 {
			hot = 1
		}
		return func() string {
			if r.OneIn(2) {
				// The "h" prefix keeps the hot set disjoint from the scan
				// range, as the benchmark stream's 1<<30 offset does.
				return "h" + strconv.Itoa(zipfKeyRank(r, hot))
			}
			return sweep()
		}, nil
	case "hotspot-shift":
		// The hot set is deliberately close to (3/4 of) the stated capacity:
		// a single cache holding it entirely hits well, but the node of a
		// cluster that owns most of the current partition is pushed past its
		// share — the demand signal the node rebalancer feeds on. Partitions
		// are keyed by prefix ("hs<p>:<rank>") so successive hot sets are
		// disjoint and hash to fresh, uncorrelated ring positions.
		hot := (capacity * 3) / 4
		if hot < 1 {
			hot = 1
		}
		every := HotspotShiftEvery(capacity)
		draws := 0
		return func() string {
			p := draws / every
			draws++
			return "hs" + strconv.Itoa(p) + ":" + strconv.Itoa(zipfKeyRank(r, hot))
		}, nil
	default:
		return nil, fmt.Errorf("workloads: unknown key distribution %q (have %v)", dist, KeyDists())
	}
}

// newSweep builds worker w's sequential scan over its slice of the span,
// starting at a seed-derived phase within the slice.
func newSweep(span int, seed uint64, w, workers int) func() string {
	lo := w * span / workers
	hi := (w + 1) * span / workers
	width := hi - lo
	if width < 1 {
		width = 1
	}
	i := scanPhase(seed, width) - 1
	return func() string {
		i++
		return "s" + strconv.Itoa(lo+i%width)
	}
}

// scanPhase spreads a sweep's starting point over its range by seed, so
// restarts and distinct seeds do not all begin at the same key.
func scanPhase(seed uint64, width int) int {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= z >> 31
	return int(z % uint64(width))
}

// zipfKeyRank draws an approximately Zipf(s≈1)-distributed rank in [0, n):
// inverse-CDF sampling of 1/x via a log-uniform draw (the same shape the
// stemcache benchmarks use).
func zipfKeyRank(r *sim.RNG, n int) int {
	u := r.Float64()
	rank := int(math.Exp(u*math.Log(float64(n)))) - 1
	if rank >= n {
		rank = n - 1
	}
	return rank
}

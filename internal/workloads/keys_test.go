package workloads

import (
	"strconv"
	"strings"
	"testing"
)

func TestNewKeyStreamDeterminism(t *testing.T) {
	for _, dist := range KeyDists() {
		a, err := NewKeyStream(dist, 1024, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewKeyStream(dist, 1024, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10_000; i++ {
			if ka, kb := a(), b(); ka != kb {
				t.Fatalf("%s: streams with equal seeds diverge at %d: %q vs %q", dist, i, ka, kb)
			}
		}
	}
}

func TestNewKeyStreamSeedsDiffer(t *testing.T) {
	a, _ := NewKeyStream("zipf", 1024, 1)
	b, _ := NewKeyStream("zipf", 1024, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a() == b() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("distinct seeds produced identical zipf streams")
	}
}

func TestNewKeyStreamShapes(t *testing.T) {
	const capacity = 1024

	// scan: strictly sequential from a seed-derived phase, wrapping at 2x
	// capacity.
	scan, err := NewKeyStream("scan", capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := scan()
	if !strings.HasPrefix(first, "s") {
		t.Fatalf("scan key %q outside the scan range", first)
	}
	phase, err := strconv.Atoi(first[1:])
	if err != nil || phase < 0 || phase >= 2*capacity {
		t.Fatalf("scan phase %q not in [0, %d)", first, 2*capacity)
	}
	for i := 1; i < 3*2*capacity; i++ {
		want := "s" + strconv.Itoa((phase+i)%(2*capacity))
		if got := scan(); got != want {
			t.Fatalf("scan key %d = %q, want %q", i, got, want)
		}
	}

	// Distinct seeds start their sweeps at distinct phases.
	other, err := NewKeyStream("scan", capacity, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o := other(); o == first {
		t.Fatalf("seeds 1 and 2 share scan phase %q", o)
	}

	// mixed: both the hot set and the scan appear, in disjoint key ranges.
	mixed, err := NewKeyStream("mixed", capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	var hot, scans int
	for i := 0; i < 10_000; i++ {
		k := mixed()
		switch {
		case strings.HasPrefix(k, "h"):
			hot++
		case strings.HasPrefix(k, "s"):
			scans++
		default:
			t.Fatalf("mixed produced key %q outside both ranges", k)
		}
	}
	if hot < 3000 || scans < 3000 {
		t.Fatalf("mixed split hot=%d scan=%d, want a rough 50/50", hot, scans)
	}

	// zipf: skewed — the most popular key recurs far above uniform.
	zipf, err := NewKeyStream("zipf", capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 10_000; i++ {
		counts[zipf()]++
	}
	if counts["z0"] < 100 { // uniform over 8*1024 keys would give ~1
		t.Fatalf("zipf head key seen %d times; distribution looks uniform", counts["z0"])
	}
}

// TestWorkerKeyStreamPartition: concurrent workers sweep disjoint scan
// slices whose union is the whole span, while sharing the hot keyspace.
func TestWorkerKeyStreamPartition(t *testing.T) {
	const capacity, workers = 1024, 4
	span := 2 * capacity
	seen := make([]map[string]bool, workers)
	union := map[string]bool{}
	for w := 0; w < workers; w++ {
		next, err := NewWorkerKeyStream("scan", capacity, uint64(w), w, workers)
		if err != nil {
			t.Fatal(err)
		}
		seen[w] = map[string]bool{}
		for i := 0; i < span; i++ { // more than a full slice sweep
			k := next()
			seen[w][k] = true
			union[k] = true
		}
		if got, want := len(seen[w]), span/workers; got != want {
			t.Fatalf("worker %d swept %d distinct keys, want %d", w, got, want)
		}
	}
	for a := 0; a < workers; a++ {
		for b := a + 1; b < workers; b++ {
			for k := range seen[a] {
				if seen[b][k] {
					t.Fatalf("workers %d and %d share scan key %q", a, b, k)
				}
			}
		}
	}
	if len(union) != span {
		t.Fatalf("union covers %d keys, want the whole span %d", len(union), span)
	}

	// The Zipfian hot set is intentionally shared across workers.
	a, err := NewWorkerKeyStream("zipf", capacity, 1, 0, workers)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkerKeyStream("zipf", capacity, 2, 3, workers)
	if err != nil {
		t.Fatal(err)
	}
	heads := map[string]bool{}
	for i := 0; i < 1000; i++ {
		heads[a()] = false
	}
	shared := 0
	for i := 0; i < 1000; i++ {
		if _, ok := heads[b()]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("workers draw from disjoint zipf keyspaces; they must share the hot set")
	}
}

// TestHotspotShiftJumpsPartitions pins the hotspot-shift contract: every
// key is "hs<p>:<rank>" with rank inside the hot set, the partition p
// advances exactly at HotspotShiftEvery boundaries, and successive
// partitions' keyspaces are disjoint (distinct prefixes).
func TestHotspotShiftJumpsPartitions(t *testing.T) {
	const capacity = 256
	hot := (capacity * 3) / 4
	every := HotspotShiftEvery(capacity)
	next, err := NewKeyStream("hotspot-shift", capacity, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*every; i++ {
		k := next()
		rest, ok := strings.CutPrefix(k, "hs")
		if !ok {
			t.Fatalf("key %d = %q lacks the hs prefix", i, k)
		}
		pStr, rankStr, ok := strings.Cut(rest, ":")
		if !ok {
			t.Fatalf("key %d = %q lacks a partition separator", i, k)
		}
		p, err := strconv.Atoi(pStr)
		if err != nil || p != i/every {
			t.Fatalf("key %d = %q in partition %d, want %d", i, k, p, i/every)
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 || rank >= hot {
			t.Fatalf("key %d = %q rank outside [0, %d)", i, k, hot)
		}
	}

	// The head of each partition's Zipf must dominate, same as "zipf".
	fresh, err := NewKeyStream("hotspot-shift", capacity, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < every; i++ {
		counts[fresh()]++
	}
	if counts["hs0:0"] < every/20 {
		t.Fatalf("hotspot head key seen %d of %d draws; not skewed", counts["hs0:0"], every)
	}
}

func TestNewKeyStreamRejects(t *testing.T) {
	if _, err := NewKeyStream("bogus", 1024, 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := NewKeyStream("zipf", 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewWorkerKeyStream("zipf", 1024, 1, 4, 4); err == nil {
		t.Fatal("out-of-range worker accepted")
	}
	if _, err := NewWorkerKeyStream("zipf", 1024, 1, 0, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/stemcache"
)

// startPair boots a 2-node loopback cluster with a replica source mapping
// every slot to [owner, other node] — the minimal rig for exercising the
// single-key replica-retry path without the membership tier.
func startPair(t *testing.T) (*cluster.Client, []*cluster.Node) {
	t.Helper()
	nodes := make([]*cluster.Node, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		node, err := cluster.StartNode(i, cluster.NodeConfig{
			Cache: stemcache.Config{
				Capacity: 512, Shards: 2, Ways: 4,
				Seed: cluster.NodeSeed(7, i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		t.Cleanup(func() { node.Close() })
	}
	cl, err := cluster.NewClient(cluster.Config{
		Addrs: addrs, VNodes: 2, Seed: 7,
		Client: client.Config{Retries: -1, DialTimeout: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetReplicaSource(func(slot int) []int {
		owner := cl.Ring().Owner(slot)
		return []int{owner, 1 - owner}
	})
	return cl, nodes
}

// keyOwnedBy finds a key routed to the wanted node.
func keyOwnedBy(t *testing.T, cl *cluster.Client, node int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if n, _ := cl.Ring().Lookup(k); n == node {
			return k
		}
	}
	t.Fatal("no key routed to the wanted node")
	return ""
}

// TestSingleKeyReplicaRetry: with the owner dead, single-key operations
// fall back to the slot's replica instead of failing; with every replica
// dead too, the combined failure surfaces as a *client.PartialError naming
// each attempted node.
func TestSingleKeyReplicaRetry(t *testing.T) {
	cl, nodes := startPair(t)
	key := keyOwnedBy(t, cl, 0)
	val := []byte("survives")

	// Seed the replica by hand (no membership agents in this rig).
	if err := cl.NodeClient(1).Set(key, val); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}

	// Reads fall through to the replica.
	got, found, err := cl.Get(key)
	if err != nil || !found || string(got) != string(val) {
		t.Fatalf("Get with dead owner: %q %v %v", got, found, err)
	}

	// Writes land inside the replica group, still acked.
	val2 := []byte("rewritten")
	if err := cl.Set(key, val2); err != nil {
		t.Fatalf("Set with dead owner: %v", err)
	}
	got, found, err = cl.NodeClient(1).Get(key)
	if err != nil || !found || string(got) != string(val2) {
		t.Fatalf("replica after fallback Set: %q %v %v", got, found, err)
	}
	if found, err := cl.Del(key); err != nil || !found {
		t.Fatalf("Del with dead owner: %v %v", found, err)
	}

	// Both nodes down: every attempt is reported.
	if err := nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = cl.Get(key)
	var pe *client.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("Get with all replicas dead returned %v, want *client.PartialError", err)
	}
	if len(pe.Errs) != 2 {
		t.Fatalf("PartialError names %d nodes, want 2: %v", len(pe.Errs), pe)
	}
	seen := map[int]bool{}
	for _, ne := range pe.Errs {
		seen[ne.Node] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("PartialError misses a node: %v", pe)
	}
}

// TestNoReplicaSourceSurfacesOwnerError: without a replica source the
// owner's transient error surfaces as-is (pre-membership behavior).
func TestNoReplicaSourceSurfacesOwnerError(t *testing.T) {
	cl, nodes := startPair(t)
	cl.SetReplicaSource(nil)
	key := keyOwnedBy(t, cl, 0)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.Get(key)
	if err == nil {
		t.Fatal("Get with dead owner and no replica source succeeded")
	}
	var pe *client.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("error is a PartialError without a replica source: %v", err)
	}
	if !client.IsTransient(err) {
		t.Fatalf("owner error lost its transience: %v", err)
	}
}

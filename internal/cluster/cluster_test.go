package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stemcache"
	"repro/internal/wire"
)

// startCluster spins up n in-process nodes plus a routing client with few
// vnodes (lumpy on purpose — tests want observable imbalance).
func startCluster(t *testing.T, n, vnodes int, capacity int) ([]*Node, *Client) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		node, err := StartNode(i, NodeConfig{
			Cache: stemcache.Config{Capacity: capacity, Shards: 2, Ways: 4, Seed: NodeSeed(7, i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		t.Cleanup(func() { node.Close() })
	}
	cl, err := NewClient(Config{Addrs: addrs, VNodes: vnodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return nodes, cl
}

func TestClientRoutesToRingOwner(t *testing.T) {
	nodes, cl := startCluster(t, 3, 4, 1024)

	const n = 300
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("route-%d", i)
		if err := cl.Set(keys[i], []byte(keys[i])); err != nil {
			t.Fatal(err)
		}
	}

	// Every key must reside on exactly the node the ring names.
	resident := make([]map[string]bool, len(nodes))
	for i, node := range nodes {
		resident[i] = map[string]bool{}
		for _, k := range node.Keys() {
			resident[i][k] = true
		}
	}
	for _, k := range keys {
		owner, _ := cl.Ring().Lookup(k)
		for i := range nodes {
			if resident[i][k] != (i == owner) {
				t.Fatalf("key %q: resident on node %d = %v, ring owner is %d",
					k, i, resident[i][k], owner)
			}
		}
	}

	// The slot load counters account for every routed operation.
	var total uint64
	for _, load := range cl.TakeSlotLoads() {
		total += load
	}
	if total != n {
		t.Fatalf("slot loads sum to %d, want %d", total, n)
	}
	// And the counters reset on take.
	for s, load := range cl.TakeSlotLoads() {
		if load != 0 {
			t.Fatalf("slot %d load %d after take, want 0", s, load)
		}
	}

	// Cluster-wide MGet reassembles in key order across the split.
	values, found, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !found[i] || string(values[i]) != k {
			t.Fatalf("MGet[%d] = (%q, %v), want %q", i, values[i], found[i], k)
		}
	}

	// Demand and stats reach each node and echo its id.
	for i := range nodes {
		d, err := cl.Demand(i)
		if err != nil {
			t.Fatal(err)
		}
		if int(d.NodeID) != i {
			t.Fatalf("node %d demand echoes id %d", i, d.NodeID)
		}
	}
	if raws, err := cl.StatsAll(); err != nil || len(raws) != 3 {
		t.Fatalf("StatsAll = %d docs, err %v", len(raws), err)
	}
}

func TestClientMSetSplits(t *testing.T) {
	_, cl := startCluster(t, 3, 4, 1024)
	pairs := make([]wire.KV, 64)
	keys := make([]string, 64)
	for i := range pairs {
		keys[i] = fmt.Sprintf("mset-%d", i)
		pairs[i] = wire.KV{Key: keys[i], Value: []byte{byte(i)}}
	}
	if err := cl.MSet(pairs); err != nil {
		t.Fatal(err)
	}
	values, found, err := cl.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || len(values[i]) != 1 || values[i][0] != byte(i) {
			t.Fatalf("pair %d did not round trip: (%v, %v)", i, values[i], found[i])
		}
	}
}

func TestClassifyOrdersAndObserves(t *testing.T) {
	var mu sync.Mutex
	var events []obs.Event
	rb := &Rebalancer{cfg: RebalancerConfig{
		Observer: obs.ObserverFunc(func(e obs.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	}.withDefaults()}
	rb.epoch = 3

	demand := func(takers, sets uint32) wire.NodeDemand {
		return wire.NodeDemand{Sets: sets, TakerSets: takers, GiverSets: sets - takers}
	}
	states := []nodeState{
		{id: 0, demand: demand(50, 100), load: 10}, // taker (frac 0.5)
		{id: 1, demand: demand(10, 100), load: 2},  // giver (frac 0.1)
		{id: 2, demand: demand(30, 100), load: 5},  // neutral
		{id: 3, demand: demand(90, 100), load: 40}, // taker, more loaded
		{id: 4, demand: demand(0, 100), load: 1},   // giver, least loaded
	}
	takers, givers := rb.classify(states)
	if len(takers) != 2 || takers[0].id != 3 || takers[1].id != 0 {
		t.Fatalf("takers = %+v, want ids [3 0] by load desc", takers)
	}
	if len(givers) != 2 || givers[0].id != 4 || givers[1].id != 1 {
		t.Fatalf("givers = %+v, want ids [4 1] by load asc", givers)
	}
	if len(events) != len(states) {
		t.Fatalf("observed %d events, want %d", len(events), len(states))
	}
	wantClass := map[int]string{0: "taker", 1: "giver", 2: "neutral", 3: "taker", 4: "giver"}
	for _, e := range events {
		if e.Type != obs.EvNodeDemand || e.Tick != 3 {
			t.Fatalf("event %+v: want EvNodeDemand at epoch 3", e)
		}
		if e.Class != wantClass[e.Set] {
			t.Fatalf("node %d classified %q, want %q", e.Set, e.Class, wantClass[e.Set])
		}
	}
}

func TestPickGiverRespectsBalance(t *testing.T) {
	rb := &Rebalancer{cfg: RebalancerConfig{}.withDefaults()}
	states := []nodeState{{id: 0, load: 100}, {id: 1, load: 30}, {id: 2, load: 10}}
	givers := []nodeState{states[2], states[1]} // load-ascending

	// Moving a 20-load slot off the 100-load taker: node 2 (10+20 < 100).
	if g := rb.pickGiver(givers, states, 20, 100); g != 2 {
		t.Fatalf("pickGiver = %d, want 2", g)
	}
	// A slot so hot the move cannot improve balance: no giver qualifies.
	if g := rb.pickGiver(givers, states, 95, 100); g != -1 {
		t.Fatalf("pickGiver = %d, want -1 (no improving move)", g)
	}
}

// TestMigrateHandsOffSlot exercises the full migration path against real
// nodes: copy, ring flip, source cleanup, event emission.
func TestMigrateHandsOffSlot(t *testing.T) {
	nodes, cl := startCluster(t, 2, 4, 1024)

	var events []obs.Event
	rb, err := NewRebalancer(cl,
		func(n int) ([]string, error) { return nodes[n].Keys(), nil },
		RebalancerConfig{
			ChunkSize: 8, // several chunks on purpose
			Observer:  obs.ObserverFunc(func(e obs.Event) { events = append(events, e) }),
		})
	if err != nil {
		t.Fatal(err)
	}

	// Populate; then pick the slot with the most keys on node 0.
	for i := 0; i < 400; i++ {
		if err := cl.Set(fmt.Sprintf("mig-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	perSlot := map[int]int{}
	for _, k := range nodes[0].Keys() {
		perSlot[cl.Ring().SlotOfKey(k)]++
	}
	slot, best := -1, 0
	for s := 0; s < cl.Ring().Slots(); s++ {
		if cl.Ring().Owner(s) == 0 && perSlot[s] > best {
			slot, best = s, perSlot[s]
		}
	}
	if slot < 0 || best < 10 {
		t.Fatalf("no populated slot on node 0 (best %d keys)", best)
	}

	mv, err := rb.migrate(slot, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Keys != best {
		t.Fatalf("migrated %d keys, slot held %d", mv.Keys, best)
	}
	if cl.Ring().Owner(slot) != 1 {
		t.Fatal("ring ownership did not flip")
	}
	// The slot's keys now live on node 1 and are gone from node 0.
	for _, k := range nodes[0].Keys() {
		if cl.Ring().SlotOfKey(k) == slot {
			t.Fatalf("key %q still resident on the old owner", k)
		}
	}
	moved := 0
	for _, k := range nodes[1].Keys() {
		if cl.Ring().SlotOfKey(k) == slot {
			moved++
		}
	}
	if moved != best {
		t.Fatalf("new owner holds %d of the slot's %d keys", moved, best)
	}
	// Reads route to the new owner and hit.
	hits := 0
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("mig-%d", i)
		if cl.Ring().SlotOfKey(k) != slot {
			continue
		}
		if _, found, err := cl.Get(k); err != nil {
			t.Fatal(err)
		} else if found {
			hits++
		}
	}
	if hits != best {
		t.Fatalf("post-migration reads hit %d of %d", hits, best)
	}
	if len(events) != 1 || events[0].Type != obs.EvSlotMigrate ||
		events[0].Set != slot || events[0].ScS != 0 || events[0].Partner != 1 ||
		events[0].Life != uint64(best) {
		t.Fatalf("migration event %+v, want slot %d 0→1 with %d keys", events, slot, best)
	}
}

// TestEpochQuietCluster: fresh caches are all givers (no taker nodes), so
// an epoch polls demands and plans nothing.
func TestEpochQuietCluster(t *testing.T) {
	nodes, cl := startCluster(t, 3, 4, 1024)
	rb, err := NewRebalancer(cl,
		func(n int) ([]string, error) { return nodes[n].Keys(), nil },
		RebalancerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := rb.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if report.Epoch != 1 || len(report.Demands) != 3 {
		t.Fatalf("report = %+v, want epoch 1 with 3 demands", report)
	}
	if len(report.Moves) != 0 {
		t.Fatalf("quiet cluster migrated: %+v", report.Moves)
	}
	for i, d := range report.Demands {
		if int(d.NodeID) != i || d.TakerSets != 0 {
			t.Fatalf("demand %d = %+v, want fresh giver node", i, d)
		}
	}
}

// TestGetOrLoadRoutesAndDeduplicates drives a herd of goroutines through
// the cluster client's read-through path: every asker for one key lands on
// the same ring owner, whose node-local lease table collapses the herd to
// a single origin fetch.
func TestGetOrLoadRoutesAndDeduplicates(t *testing.T) {
	_, cl := startCluster(t, 3, 8, 1024)

	var originCalls atomic.Int64
	origin := func(ctx context.Context, key string) ([]byte, error) {
		originCalls.Add(1)
		time.Sleep(20 * time.Millisecond) // slow origin: let the herd pile up
		return []byte("origin:" + key), nil
	}

	const keys, herd = 8, 8
	var wg sync.WaitGroup
	errs := make(chan error, keys*herd)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("hot-%d", k)
		for g := 0; g < herd; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := cl.GetOrLoad(context.Background(), key, origin)
				if err != nil {
					errs <- err
					return
				}
				if string(v) != "origin:"+key {
					errs <- fmt.Errorf("GetOrLoad(%q) = %q", key, v)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := originCalls.Load(); n != keys {
		t.Fatalf("origin calls = %d; want %d (one per key, however many askers)", n, keys)
	}
	// A reload is a pure cache hit: no origin traffic at all.
	if _, err := cl.GetOrLoad(context.Background(), "hot-0", origin); err != nil {
		t.Fatal(err)
	}
	if n := originCalls.Load(); n != keys {
		t.Fatalf("origin calls after reload = %d; want still %d", n, keys)
	}
}

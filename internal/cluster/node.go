package cluster

import (
	"fmt"
	"sync"

	"repro/internal/server"
	"repro/internal/stemcache"
)

// NodeConfig parameterizes one in-process cluster node: a
// stemcache.Cache[string, []byte] served by an internal/server.Server on a
// loopback (or configured) address. cmd/stemcluster uses this to run an
// N-node cluster in one process; tests use it for loopback clusters.
type NodeConfig struct {
	// Cache configures the node's cache. Give nodes distinct seeds (see
	// NodeSeed) so their probabilistic devices are independent.
	Cache stemcache.Config
	// Server configures the node's server; NodeID is overwritten with the
	// node's id.
	Server server.Config
	// Addr is the listen address. Default "127.0.0.1:0".
	Addr string
	// LRU, when true, builds the node's cache with STEM's spatial and
	// temporal mechanisms disabled (a plain sharded LRU) — the baseline
	// configuration for cluster A/B runs.
	LRU bool
}

// Node is one running cluster member. Construct with StartNode; stop with
// Close.
type Node struct {
	id    int
	cache *stemcache.Cache[string, []byte]
	srv   *server.Server

	// mu guards closed (rank 1: below Ring.mu, above Rebalancer.obsMu).
	mu     sync.Mutex
	closed bool
}

// NodeSeed derives node nodeID's cache seed from a cluster-wide seed, so an
// N-node cluster is reproducible from one number while its nodes' RNG
// streams stay independent.
func NodeSeed(clusterSeed uint64, nodeID int) uint64 {
	return mix64(clusterSeed + 0x9e3779b97f4a7c15*uint64(nodeID+1))
}

// StartNode builds node id's cache and serves it. On success the node is
// reachable at Addr() until Close.
func StartNode(id int, cfg NodeConfig) (*Node, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	cfg.Server.NodeID = id

	var cache *stemcache.Cache[string, []byte]
	var err error
	if cfg.LRU {
		cache, err = stemcache.NewShardedLRU[string, []byte](cfg.Cache)
	} else {
		cache, err = stemcache.New[string, []byte](cfg.Cache)
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d cache: %w", id, err)
	}
	srv, err := server.New(cache, cfg.Server)
	if err != nil {
		cache.Close()
		return nil, fmt.Errorf("cluster: node %d server: %w", id, err)
	}
	if err := srv.Start(cfg.Addr); err != nil {
		cache.Close()
		return nil, fmt.Errorf("cluster: node %d listen: %w", id, err)
	}
	return &Node{id: id, cache: cache, srv: srv}, nil
}

// ID returns the node's cluster id.
func (n *Node) ID() int { return n.id }

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.srv.Addr() }

// Cache exposes the node's cache (tests assert on its stats directly).
func (n *Node) Cache() *stemcache.Cache[string, []byte] { return n.cache }

// Server exposes the node's server — the membership agent installs its
// hooks (replica fan-out, view pushes, read repair) through it.
func (n *Node) Server() *server.Server { return n.srv }

// Keys enumerates the node's resident keys — the rebalancer's KeyLister
// for in-process clusters. See stemcache.AppendKeys for the consistency
// contract.
func (n *Node) Keys() []string { return n.cache.AppendKeys(nil) }

// Close stops the server (draining in-flight requests) and closes the
// cache. Idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()

	err := n.srv.Close()
	n.cache.Close()
	return err
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes a cluster Client.
type Config struct {
	// Addrs are the nodes' "host:port" addresses; node i is Addrs[i]. The
	// order must agree across every client and the rebalancer (it defines
	// node ids).
	Addrs []string
	// VNodes is the number of ring slots per node. More slots spread load
	// more evenly but make migrations finer-grained. Default 16.
	VNodes int
	// Seed places the ring's slot points and hashes keys onto it. Every
	// client of one cluster must share it.
	Seed uint64
	// Client is the per-node connection template; Addr is overwritten per
	// node. Its Namespace field scopes the whole cluster client to one
	// tenant namespace: keys route by the ring exactly as before (the
	// namespace does not shift ownership), and every node applies its own
	// tenant accounting and capacity arbitration to the requests it serves.
	Client client.Config
	// Metrics, when non-nil, receives ring and routing gauges under
	// "cluster.*".
	Metrics *obs.Registry
}

// Client routes cache operations across a cluster through a consistent-hash
// Ring: single operations go to the key's owner, MGET/MSET batches are
// split per owner, sent concurrently, and merged back into request order
// (via client.Multi). It also keeps the two signals the rebalancer feeds
// on: per-slot operation counts (the load signal) and per-node in-flight
// gates (so a migration can drain a node before copying keys).
//
// Safe for concurrent use.
type Client struct {
	ring  *Ring
	multi *client.Multi

	// slotOps[s] counts operations routed to slot s since the last
	// TakeSlotLoads — the rebalancer's per-epoch load signal.
	slotOps []atomic.Uint64
	// gates[n] tracks node n's started/finished operations for DrainNode.
	gates []gate

	ops *obs.Counter
}

// gate is one node's in-flight accounting: an operation bumps started
// before the network call and done after it.
type gate struct {
	started atomic.Uint64
	done    atomic.Uint64
}

// NewClient builds a routing client over cfg.Addrs.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 16
	}
	ring, err := NewRing(len(cfg.Addrs), cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cfgs := make([]client.Config, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		c := cfg.Client
		c.Addr = addr
		cfgs[i] = c
	}
	multi, err := client.NewMulti(cfgs)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		ring:    ring,
		multi:   multi,
		slotOps: make([]atomic.Uint64, ring.Slots()),
		gates:   make([]gate, len(cfg.Addrs)),
	}
	if reg := cfg.Metrics; reg != nil {
		cl.ops = reg.Counter("cluster.client_ops")
		reg.GaugeFunc("cluster.ring_version", func() float64 { return float64(ring.Version()) })
		for n := 0; n < len(cfg.Addrs); n++ {
			n := n
			reg.GaugeFunc(fmt.Sprintf("cluster.node%d.slots", n), func() float64 {
				return float64(len(ring.OwnedSlots(n)))
			})
		}
	}
	return cl, nil
}

// Ring exposes the client's ring (shared with the rebalancer).
func (c *Client) Ring() *Ring { return c.ring }

// Nodes returns the node count.
func (c *Client) Nodes() int { return c.multi.Len() }

// Close releases every node's pooled connections.
func (c *Client) Close() error { return c.multi.Close() }

// route resolves key's owner, charges the slot's load counter, and opens
// the node's gate. The caller must defer c.exit(node).
func (c *Client) route(key string) (node int) {
	node, slot := c.ring.Lookup(key)
	c.slotOps[slot].Add(1)
	c.gates[node].started.Add(1)
	c.ops.Inc()
	return node
}

func (c *Client) exit(node int) { c.gates[node].done.Add(1) }

// Get fetches key from its owning node.
func (c *Client) Get(key string) (value []byte, found bool, err error) {
	node := c.route(key)
	defer c.exit(node)
	return c.multi.Node(node).Get(key)
}

// Set stores key on its owning node.
func (c *Client) Set(key string, value []byte) error {
	node := c.route(key)
	defer c.exit(node)
	return c.multi.Node(node).Set(key, value)
}

// SetTTL stores key with an explicit TTL on its owning node.
func (c *Client) SetTTL(key string, value []byte, ttl time.Duration) error {
	node := c.route(key)
	defer c.exit(node)
	return c.multi.Node(node).SetTTL(key, value, ttl)
}

// Del removes key from its owning node.
func (c *Client) Del(key string) (found bool, err error) {
	node := c.route(key)
	defer c.exit(node)
	return c.multi.Node(node).Del(key)
}

// GetOrLoad reads key through its owning node's lease protocol
// (client.Client.GetOrLoad): consistent hashing sends every process asking
// for a key to the same node, so the node-local lease table deduplicates
// origin fetches across the whole fleet — one origin fetch per miss,
// cluster-wide. After a ring migration a key's old owner may hold a now
// unreachable lease; it simply times out (server LeaseWait) with no effect
// on the new owner.
func (c *Client) GetOrLoad(ctx context.Context, key string, origin client.Origin) ([]byte, error) {
	node := c.route(key)
	defer c.exit(node)
	return c.multi.Node(node).GetOrLoad(ctx, key, origin)
}

// routeBatch resolves owners for n keys via pick-by-index, charging slot
// counters and opening the gates of every involved node. It returns the
// per-index node table and the distinct involved nodes.
func (c *Client) routeBatch(n int, keyAt func(int) string) (nodes []int, involved []int) {
	nodes = make([]int, n)
	var seen []bool
	for i := 0; i < n; i++ {
		node, slot := c.ring.Lookup(keyAt(i))
		nodes[i] = node
		c.slotOps[slot].Add(1)
		if seen == nil {
			seen = make([]bool, c.multi.Len())
		}
		if !seen[node] {
			seen[node] = true
			involved = append(involved, node)
		}
	}
	for _, node := range involved {
		c.gates[node].started.Add(1)
	}
	c.ops.Inc()
	return nodes, involved
}

// MGet fetches keys across the cluster: the batch is split per owning
// node, fanned out concurrently, and merged back into key order. Failure
// semantics are client.Multi's: dead nodes' keys read as misses alongside
// a *client.PartialError.
func (c *Client) MGet(keys []string) (values [][]byte, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	nodes, involved := c.routeBatch(len(keys), func(i int) string { return keys[i] })
	defer func() {
		for _, node := range involved {
			c.exit(node)
		}
	}()
	return c.multi.MGet(keys, func(i int) int { return nodes[i] })
}

// MSet stores pairs across the cluster (split per owner, like MGet).
func (c *Client) MSet(pairs []wire.KV) error {
	if len(pairs) == 0 {
		return nil
	}
	nodes, involved := c.routeBatch(len(pairs), func(i int) string { return pairs[i].Key })
	defer func() {
		for _, node := range involved {
			c.exit(node)
		}
	}()
	return c.multi.MSet(pairs, func(i int) int { return nodes[i] })
}

// Ping checks liveness of every node; the first failure wins.
func (c *Client) Ping() error {
	for n := 0; n < c.multi.Len(); n++ {
		if err := c.multi.Node(n).Ping(); err != nil {
			return fmt.Errorf("node %d: %w", n, err)
		}
	}
	return nil
}

// Demand polls node's capacity-demand snapshot.
func (c *Client) Demand(node int) (wire.NodeDemand, error) {
	return c.multi.Node(node).Demand()
}

// Stats fetches node's STATS document (raw JSON, see server.StatsSnapshot).
func (c *Client) Stats(node int) ([]byte, error) {
	return c.multi.Node(node).Stats()
}

// StatsAll fetches every node's STATS document, indexed by node.
func (c *Client) StatsAll() ([][]byte, error) {
	out := make([][]byte, c.multi.Len())
	for n := range out {
		b, err := c.multi.Node(n).Stats()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", n, err)
		}
		out[n] = b
	}
	return out, nil
}

// node exposes a raw per-node client to the rebalancer's migration path
// (which must address old and new owners directly, bypassing the ring).
func (c *Client) node(n int) *client.Client { return c.multi.Node(n) }

// TakeSlotLoads returns each slot's operation count since the previous
// call, resetting the counters — one rebalancing epoch's load signal.
func (c *Client) TakeSlotLoads() []uint64 {
	loads := make([]uint64, len(c.slotOps))
	for s := range c.slotOps {
		loads[s] = c.slotOps[s].Swap(0)
	}
	return loads
}

// DrainNode waits until every operation routed to node before the call has
// finished — the quiesce step before a migration copies a slot's keys.
// Operations started after the call are not waited for (the lost-write
// window is documented at Rebalancer.migrate).
func (c *Client) DrainNode(node int) {
	g := &c.gates[node]
	target := g.started.Load()
	for g.done.Load() < target {
		time.Sleep(200 * time.Microsecond)
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes a cluster Client.
type Config struct {
	// Addrs are the nodes' "host:port" addresses; node i is Addrs[i]. The
	// order must agree across every client and the rebalancer (it defines
	// node ids).
	Addrs []string
	// VNodes is the number of ring slots per node. More slots spread load
	// more evenly but make migrations finer-grained. Default 16.
	VNodes int
	// Seed places the ring's slot points and hashes keys onto it. Every
	// client of one cluster must share it.
	Seed uint64
	// Client is the per-node connection template; Addr is overwritten per
	// node. Its Namespace field scopes the whole cluster client to one
	// tenant namespace: keys route by the ring exactly as before (the
	// namespace does not shift ownership), and every node applies its own
	// tenant accounting and capacity arbitration to the requests it serves.
	Client client.Config
	// DemandEvery, when > 0, asks every DemandEvery-th request per node to
	// piggyback the node's demand snapshot on its response (wire.FlagDemand)
	// and caches it — the push-based DEMAND dissemination the rebalancer
	// and membership manager consume, with an explicit poll as fallback.
	DemandEvery int
	// Metrics, when non-nil, receives ring and routing gauges under
	// "cluster.*".
	Metrics *obs.Registry
}

// Client routes cache operations across a cluster through a consistent-hash
// Ring: single operations go to the key's owner, MGET/MSET batches are
// split per owner, sent concurrently, and merged back into request order
// (via client.Multi). It also keeps the two signals the rebalancer feeds
// on: per-slot operation counts (the load signal) and per-node in-flight
// gates (so a migration can drain a node before copying keys).
//
// With a replica source installed (SetReplicaSource, fed by the membership
// manager), single-key operations that fail transiently on a slot's owner
// are retried against the slot's replicas before any error surfaces — the
// client-side half of failover.
//
// Safe for concurrent use. The node set can grow (AddNode, for scale-out).
type Client struct {
	ring  *Ring
	multi *client.Multi

	// slotOps[s] counts operations routed to slot s since the last
	// TakeSlotLoads — the rebalancer's per-epoch load signal. The slot set
	// is fixed, so this never grows.
	slotOps []atomic.Uint64
	// handles is the per-node state (gate + pushed-demand cache) behind an
	// immutable snapshot so AddNode never blocks the data path. The handle
	// objects themselves are shared across snapshots.
	handles atomic.Pointer[[]*nodeHandle]
	// replicaSource, when set, maps a slot to its replica node ids (owner
	// first). Installed by the membership manager.
	replicaSource atomic.Pointer[func(slot int) []int]

	// mu serializes AddNode (the only writer of handles).
	mu sync.Mutex

	tpl         client.Config
	demandEvery int
	reg         *obs.Registry
	ops         *obs.Counter
}

// nodeHandle is one node's client-side state: the drain gate and the last
// demand snapshot its responses piggybacked.
type nodeHandle struct {
	gate   gate
	demand atomic.Pointer[wire.NodeDemand]
}

// gate is one node's in-flight accounting: an operation bumps started
// before the network call and done after it.
type gate struct {
	started atomic.Uint64
	done    atomic.Uint64
}

// NewClient builds a routing client over cfg.Addrs.
func NewClient(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 16
	}
	ring, err := NewRing(len(cfg.Addrs), cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		ring:        ring,
		slotOps:     make([]atomic.Uint64, ring.Slots()),
		tpl:         cfg.Client,
		demandEvery: cfg.DemandEvery,
		reg:         cfg.Metrics,
	}
	handles := make([]*nodeHandle, len(cfg.Addrs))
	cfgs := make([]client.Config, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		handles[i] = &nodeHandle{}
		cfgs[i] = cl.nodeConfig(addr, handles[i])
	}
	cl.handles.Store(&handles)
	multi, err := client.NewMulti(cfgs)
	if err != nil {
		return nil, err
	}
	cl.multi = multi
	if reg := cfg.Metrics; reg != nil {
		cl.ops = reg.Counter("cluster.client_ops")
		reg.GaugeFunc("cluster.ring_version", func() float64 { return float64(ring.Version()) })
		for n := 0; n < len(cfg.Addrs); n++ {
			cl.registerNodeGauge(n)
		}
	}
	return cl, nil
}

// nodeConfig derives one node's connection config from the template: the
// address and, when demand push is on, the piggyback sampling plus the
// OnDemand sink writing into the node's handle.
func (c *Client) nodeConfig(addr string, h *nodeHandle) client.Config {
	nc := c.tpl
	nc.Addr = addr
	if c.demandEvery > 0 {
		nc.DemandEvery = c.demandEvery
		nc.OnDemand = func(d wire.NodeDemand) { h.demand.Store(&d) }
	}
	return nc
}

// registerNodeGauge publishes node n's owned-slot count.
func (c *Client) registerNodeGauge(n int) {
	c.reg.GaugeFunc(fmt.Sprintf("cluster.node%d.slots", n), func() float64 {
		return float64(len(c.ring.OwnedSlots(n)))
	})
}

// AddNode appends a node to the client's set and the ring's node count
// (scale-out) and returns its id. The new node owns no slots until the
// membership manager or rebalancer moves some to it.
func (c *Client) AddNode(addr string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &nodeHandle{}
	id, err := c.multi.Add(c.nodeConfig(addr, h))
	if err != nil {
		return 0, err
	}
	old := *c.handles.Load()
	grown := make([]*nodeHandle, len(old)+1)
	copy(grown, old)
	grown[len(old)] = h
	c.handles.Store(&grown)
	// The ring grows last so a Lookup never routes to a node the multi
	// cannot reach yet.
	if rid := c.ring.AddNode(); rid != id {
		return 0, fmt.Errorf("cluster: ring/multi node id drift: %d vs %d", rid, id)
	}
	if c.reg != nil {
		c.registerNodeGauge(id)
	}
	return id, nil
}

// SetReplicaSource installs (or with nil removes) the slot→replica mapping
// single-key operations retry through. The membership manager installs its
// ReplicasOf here.
func (c *Client) SetReplicaSource(src func(slot int) []int) {
	if src == nil {
		c.replicaSource.Store(nil)
		return
	}
	c.replicaSource.Store(&src)
}

// Ring exposes the client's ring (shared with the rebalancer).
func (c *Client) Ring() *Ring { return c.ring }

// Template returns the per-node connection template the client was built
// with, so sibling tiers (the membership agents' peer connections) dial
// with the same timeouts and retry policy.
func (c *Client) Template() client.Config { return c.tpl }

// Nodes returns the node count.
func (c *Client) Nodes() int { return c.multi.Len() }

// Close releases every node's pooled connections.
func (c *Client) Close() error { return c.multi.Close() }

// route resolves key's owner, charges the slot's load counter, and opens
// the node's gate. The caller must defer c.exit(node).
func (c *Client) route(key string) (node, slot int) {
	node, slot = c.ring.Lookup(key)
	c.slotOps[slot].Add(1)
	c.enter(node)
	c.ops.Inc()
	return node, slot
}

func (c *Client) enter(node int) { (*c.handles.Load())[node].gate.started.Add(1) }
func (c *Client) exit(node int)  { (*c.handles.Load())[node].gate.done.Add(1) }

// replicasFor returns slot's replica nodes excluding owner, or nil when no
// replica source is installed.
func (c *Client) replicasFor(slot, owner int) []int {
	srcp := c.replicaSource.Load()
	if srcp == nil {
		return nil
	}
	var out []int
	for _, n := range (*srcp)(slot) {
		if n != owner && n >= 0 && n < c.multi.Len() {
			out = append(out, n)
		}
	}
	return out
}

// single runs op against key's owner and, on a transient failure, retries
// it against the slot's replicas in placement order. When the owner and
// every replica fail, the combined failures surface as a
// *client.PartialError; a non-transient owner error surfaces as itself.
func (c *Client) single(key string, op func(cl *client.Client) error) error {
	node, slot := c.route(key)
	err := op(c.multi.Node(node))
	c.exit(node)
	if err == nil || !client.IsTransient(err) {
		return err
	}
	reps := c.replicasFor(slot, node)
	if len(reps) == 0 {
		return err
	}
	errs := []client.NodeError{{Node: node, Err: err}}
	for _, rn := range reps {
		c.enter(rn)
		rerr := op(c.multi.Node(rn))
		c.exit(rn)
		if rerr == nil {
			return nil
		}
		errs = append(errs, client.NodeError{Node: rn, Err: rerr})
	}
	return &client.PartialError{Errs: errs}
}

// Get fetches key from its owning node, falling back to the slot's
// replicas when the owner is unreachable.
func (c *Client) Get(key string) (value []byte, found bool, err error) {
	err = c.single(key, func(cl *client.Client) error {
		var e error
		value, found, e = cl.Get(key)
		return e
	})
	if err != nil {
		return nil, false, err
	}
	return value, found, nil
}

// Set stores key on its owning node, falling back to the slot's replicas
// when the owner is unreachable (the write stays inside the slot's replica
// group, so failover still finds it).
func (c *Client) Set(key string, value []byte) error {
	return c.single(key, func(cl *client.Client) error {
		return cl.Set(key, value)
	})
}

// SetTTL stores key with an explicit TTL on its owning node (replica
// fallback as Set).
func (c *Client) SetTTL(key string, value []byte, ttl time.Duration) error {
	return c.single(key, func(cl *client.Client) error {
		return cl.SetTTL(key, value, ttl)
	})
}

// Del removes key from its owning node (replica fallback as Set).
func (c *Client) Del(key string) (found bool, err error) {
	err = c.single(key, func(cl *client.Client) error {
		var e error
		found, e = cl.Del(key)
		return e
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// GetOrLoad reads key through its owning node's lease protocol
// (client.Client.GetOrLoad): consistent hashing sends every process asking
// for a key to the same node, so the node-local lease table deduplicates
// origin fetches across the whole fleet — one origin fetch per miss,
// cluster-wide. After a ring migration a key's old owner may hold a now
// unreachable lease; it simply times out (server LeaseWait) with no effect
// on the new owner. When the owner is unreachable the load runs through a
// replica instead — fetch deduplication degrades to per-replica, never
// breaks.
func (c *Client) GetOrLoad(ctx context.Context, key string, origin client.Origin) (value []byte, err error) {
	err = c.single(key, func(cl *client.Client) error {
		var e error
		value, e = cl.GetOrLoad(ctx, key, origin)
		return e
	})
	if err != nil {
		return nil, err
	}
	return value, nil
}

// routeBatch resolves owners for n keys via pick-by-index, charging slot
// counters and opening the gates of every involved node. It returns the
// per-index node table and the distinct involved nodes.
func (c *Client) routeBatch(n int, keyAt func(int) string) (nodes []int, involved []int) {
	nodes = make([]int, n)
	var seen []bool
	for i := 0; i < n; i++ {
		node, slot := c.ring.Lookup(keyAt(i))
		nodes[i] = node
		c.slotOps[slot].Add(1)
		if seen == nil {
			seen = make([]bool, c.multi.Len())
		}
		if !seen[node] {
			seen[node] = true
			involved = append(involved, node)
		}
	}
	for _, node := range involved {
		c.enter(node)
	}
	c.ops.Inc()
	return nodes, involved
}

// MGet fetches keys across the cluster: the batch is split per owning
// node, fanned out concurrently, and merged back into key order. Failure
// semantics are client.Multi's: dead nodes' keys read as misses alongside
// a *client.PartialError.
func (c *Client) MGet(keys []string) (values [][]byte, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	nodes, involved := c.routeBatch(len(keys), func(i int) string { return keys[i] })
	defer func() {
		for _, node := range involved {
			c.exit(node)
		}
	}()
	return c.multi.MGet(keys, func(i int) int { return nodes[i] })
}

// MSet stores pairs across the cluster (split per owner, like MGet).
func (c *Client) MSet(pairs []wire.KV) error {
	if len(pairs) == 0 {
		return nil
	}
	nodes, involved := c.routeBatch(len(pairs), func(i int) string { return pairs[i].Key })
	defer func() {
		for _, node := range involved {
			c.exit(node)
		}
	}()
	return c.multi.MSet(pairs, func(i int) int { return nodes[i] })
}

// Ping checks liveness of every node; the first failure wins.
func (c *Client) Ping() error {
	for n := 0; n < c.multi.Len(); n++ {
		if err := c.multi.Node(n).Ping(); err != nil {
			return fmt.Errorf("node %d: %w", n, err)
		}
	}
	return nil
}

// Demand polls node's capacity-demand snapshot (an explicit round trip;
// see CachedDemand for the push-based path).
func (c *Client) Demand(node int) (wire.NodeDemand, error) {
	return c.multi.Node(node).Demand()
}

// CachedDemand returns node's last pushed demand snapshot (piggybacked on
// a response or brought back by Heartbeat), or ok=false when none has
// arrived yet.
func (c *Client) CachedDemand(node int) (wire.NodeDemand, bool) {
	d := (*c.handles.Load())[node].demand.Load()
	if d == nil {
		return wire.NodeDemand{}, false
	}
	return *d, true
}

// Heartbeat pings node and caches the demand snapshot the response carries
// — the membership detector's probe, doubling as the demand-gossip
// fallback for idle nodes that no request traffic reaches.
func (c *Client) Heartbeat(node int) (wire.NodeDemand, error) {
	c.enter(node)
	defer c.exit(node)
	d, err := c.multi.Node(node).Heartbeat()
	if err != nil {
		return wire.NodeDemand{}, err
	}
	(*c.handles.Load())[node].demand.Store(&d)
	return d, nil
}

// Stats fetches node's STATS document (raw JSON, see server.StatsSnapshot).
func (c *Client) Stats(node int) ([]byte, error) {
	return c.multi.Node(node).Stats()
}

// StatsAll fetches every node's STATS document, indexed by node.
func (c *Client) StatsAll() ([][]byte, error) {
	out := make([][]byte, c.multi.Len())
	for n := range out {
		b, err := c.multi.Node(n).Stats()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", n, err)
		}
		out[n] = b
	}
	return out, nil
}

// node exposes a raw per-node client to the rebalancer's migration path
// and the membership manager (which must address nodes directly, bypassing
// the ring).
func (c *Client) node(n int) *client.Client { return c.multi.Node(n) }

// NodeClient is the exported form of node, for the membership manager.
func (c *Client) NodeClient(n int) *client.Client { return c.multi.Node(n) }

// TakeSlotLoads returns each slot's operation count since the previous
// call, resetting the counters — one rebalancing epoch's load signal.
func (c *Client) TakeSlotLoads() []uint64 {
	loads := make([]uint64, len(c.slotOps))
	for s := range c.slotOps {
		loads[s] = c.slotOps[s].Swap(0)
	}
	return loads
}

// DrainNode waits until every operation routed to node before the call has
// finished — the quiesce step before a migration copies a slot's keys.
// Operations started after the call are not waited for (the lost-write
// window is documented at Client.MoveSlot).
func (c *Client) DrainNode(node int) {
	g := &(*c.handles.Load())[node].gate
	target := g.started.Load()
	for g.done.Load() < target {
		time.Sleep(200 * time.Microsecond)
	}
}

package cluster

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// KeyLister enumerates a node's resident keys for a migration. In-process
// clusters use Node.Keys; an external deployment would plug in a SCAN-like
// listing. The listing may be racy with respect to concurrent writers —
// migration filters it by slot and treats absent keys as already gone.
type KeyLister func(node int) ([]string, error)

// CopySlot copies slot's resident keys from node `from` to node `to`
// (MGET old → MSET new, chunked) without touching ring ownership. It
// returns the slot's key list (sorted, as seen by lister) and how many of
// them were actually copied. Both the rebalancer's migrations and the
// membership manager's replica placement and scale-out handoffs are built
// on it.
func (c *Client) CopySlot(lister KeyLister, slot, from, to, chunkSize int) (keys []string, copied int, err error) {
	if chunkSize <= 0 {
		chunkSize = 256
	}
	all, err := lister(from)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: listing node %d for slot %d: %w", from, slot, err)
	}
	for _, k := range all {
		if c.ring.SlotOfKey(k) == slot {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	src, dst := c.node(from), c.node(to)
	for off := 0; off < len(keys); off += chunkSize {
		chunk := keys[off:min(off+chunkSize, len(keys))]
		values, found, err := src.MGet(chunk)
		if err != nil {
			return keys, copied, fmt.Errorf("cluster: copying slot %d off node %d: %w", slot, from, err)
		}
		pairs := make([]wire.KV, 0, len(chunk))
		for i, k := range chunk {
			if found[i] {
				pairs = append(pairs, wire.KV{Key: k, Value: values[i]})
			}
		}
		if len(pairs) > 0 {
			if err := dst.MSet(pairs); err != nil {
				return keys, copied, fmt.Errorf("cluster: installing slot %d on node %d: %w", slot, to, err)
			}
		}
		copied += len(pairs)
	}
	return keys, copied, nil
}

// MoveSlot hands slot from node `from` to node `to`: drain from's in-flight
// requests, CopySlot, flip ring ownership, then delete the keys from the
// old owner.
//
// The copy-then-flip-then-delete order means a write that lands on the old
// owner between the copy and the flip is lost — the same at-least-once
// cache semantics the client's retry path already has. What the order
// guarantees is no read-miss storm: at every instant one node can serve
// the slot's keys.
func (c *Client) MoveSlot(lister KeyLister, slot, from, to, chunkSize int) (Move, error) {
	mv := Move{Slot: slot, From: from, To: to}
	c.DrainNode(from)

	keys, copied, err := c.CopySlot(lister, slot, from, to, chunkSize)
	if err != nil {
		return mv, err
	}
	mv.Keys = copied

	if err := c.ring.Move(slot, to); err != nil {
		return mv, err
	}
	src := c.node(from)
	for _, k := range keys {
		if _, err := src.Del(k); err != nil {
			return mv, fmt.Errorf("cluster: clearing slot %d off node %d: %w", slot, from, err)
		}
	}
	return mv, nil
}

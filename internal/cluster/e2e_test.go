package cluster_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stemcache"
	"repro/internal/workloads"
)

// The hotspot-shift A/B: a 3-node ring driven by a Zipf hot set that jumps
// to a fresh key partition mid-run. Each partition hashes to a different
// slot mix, so whichever node owns the biggest share of the current
// partition is pushed past its capacity (its sets' SC_S counters saturate
// → the node reads as a taker) while the others idle. The STEM run lets
// the rebalancer migrate slots each epoch; the static run never rebalances.
// Everything is seeded, so the comparison is exact and reproducible.
const (
	e2eNodes      = 3
	e2eVNodes     = 2   // few, fat slots: imbalance is the point
	e2eCapacity   = 256 // per node (2 shards × 32 sets × 4 ways)
	e2eSeed       = 21  // cluster seed: ring placement + node cache seeds
	e2eWorkSeed   = 9   // workload seed
	e2eStreamCap  = 960 // hot set = 720 keys ≈ 0.94× cluster capacity
	e2ePartitions = 3   // hotspot shifts seen by the run
	e2eEpochOps   = 512 // driver ops between rebalancing epochs
	e2eMaxMoves   = 2   // migration bound per epoch
)

// runHotspotShift drives one full cluster run and returns the client-side
// hit tally plus every epoch report (empty for the static configuration).
func runHotspotShift(t *testing.T, rebalance bool) (gets, hits int, reports []cluster.EpochReport) {
	t.Helper()
	nodes := make([]*cluster.Node, e2eNodes)
	addrs := make([]string, e2eNodes)
	for i := range nodes {
		node, err := cluster.StartNode(i, cluster.NodeConfig{
			Cache: stemcache.Config{
				Capacity: e2eCapacity, Shards: 2, Ways: 4,
				// Narrow counters with slow decay: the node-level demand
				// signal responds within one epoch of a hotspot landing.
				CounterBits: 3, SpatialShift: 4,
				Seed: cluster.NodeSeed(e2eSeed, i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		defer node.Close()
		addrs[i] = node.Addr()
	}
	cl, err := cluster.NewClient(cluster.Config{Addrs: addrs, VNodes: e2eVNodes, Seed: e2eSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var rb *cluster.Rebalancer
	if rebalance {
		rb, err = cluster.NewRebalancer(cl,
			func(n int) ([]string, error) { return nodes[n].Keys(), nil },
			cluster.RebalancerConfig{
				MaxMovesPerEpoch: e2eMaxMoves,
				// Thresholds matched to the workload's measured signal: the
				// overloaded nodes' demand scores ride ~0.15-0.27, the idle
				// node's stays ~0.
				TakerFrac: 0.12, GiverFrac: 0.05,
			})
		if err != nil {
			t.Fatal(err)
		}
	}

	next, err := workloads.NewKeyStream("hotspot-shift", e2eStreamCap, e2eWorkSeed)
	if err != nil {
		t.Fatal(err)
	}
	ops := e2ePartitions * workloads.HotspotShiftEvery(e2eStreamCap)
	val := []byte("x")
	for i := 0; i < ops; i++ {
		if rb != nil && i > 0 && i%e2eEpochOps == 0 {
			report, err := rb.Epoch()
			if err != nil {
				t.Fatalf("epoch at op %d: %v", i, err)
			}
			reports = append(reports, report)
		}
		k := next()
		_, found, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get %q at op %d: %v", k, i, err)
		}
		gets++
		if found {
			hits++
			continue
		}
		if err := cl.Set(k, val); err != nil {
			t.Fatalf("set %q at op %d: %v", k, i, err)
		}
	}
	return gets, hits, reports
}

// TestRebalancedRingBeatsStatic pins the tentpole claim: under the
// hotspot-shift workload, the STEM-rebalanced ring's aggregate client hit
// rate strictly beats the static ring's, with every epoch's migrations
// inside the configured bound — and the rebalanced run is deterministic.
func TestRebalancedRingBeatsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e drives ~41k loopback round trips")
	}
	sGets, sHits, sReports := runHotspotShift(t, false)
	if len(sReports) != 0 {
		t.Fatalf("static run produced %d epoch reports", len(sReports))
	}
	rGets, rHits, rReports := runHotspotShift(t, true)
	if sGets != rGets {
		t.Fatalf("runs diverged in op count: %d vs %d", sGets, rGets)
	}

	sRate := float64(sHits) / float64(sGets)
	rRate := float64(rHits) / float64(rGets)
	t.Logf("static: %d/%d = %.4f; rebalanced: %d/%d = %.4f",
		sHits, sGets, sRate, rHits, rGets, rRate)

	if rHits <= sHits {
		t.Fatalf("rebalanced ring (%.4f) does not beat static (%.4f)", rRate, sRate)
	}

	moves := 0
	for _, rep := range rReports {
		if len(rep.Moves) > e2eMaxMoves {
			t.Fatalf("epoch %d migrated %d slots, bound is %d", rep.Epoch, len(rep.Moves), e2eMaxMoves)
		}
		moves += len(rep.Moves)
	}
	if moves == 0 {
		t.Fatal("the rebalanced run never migrated a slot; the A/B is vacuous")
	}
	t.Logf("rebalanced run: %d epochs, %d migrations", len(rReports), moves)

	// Determinism: an identical rebalanced run reproduces hits and moves.
	rGets2, rHits2, rReports2 := runHotspotShift(t, true)
	if rGets2 != rGets || rHits2 != rHits {
		t.Fatalf("rebalanced rerun diverged: %d/%d vs %d/%d", rHits2, rGets2, rHits, rGets)
	}
	if fmt.Sprint(rReports2) != fmt.Sprint(rReports) {
		t.Fatal("rebalanced rerun planned different migrations")
	}
}

package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
)

// RebalancerConfig parameterizes a Rebalancer.
type RebalancerConfig struct {
	// MaxMovesPerEpoch bounds slot migrations per Epoch call — the
	// node-level analog of the paper's one-association-per-refresh pacing:
	// capacity shifts gradually so a transient skew cannot thrash
	// ownership. Default 2.
	MaxMovesPerEpoch int
	// TakerFrac classifies a node as a taker when its demand score — the
	// larger of its taker-set fraction and its mean SC_S saturation — is
	// at least this. Default 0.5.
	TakerFrac float64
	// GiverFrac classifies a node as a giver when its demand score is at
	// most this. Default 0.25.
	GiverFrac float64
	// ChunkSize bounds one migration MGET/MSET frame. Default 256.
	ChunkSize int
	// Metrics, when non-nil, receives rebalancer counters under
	// "cluster.*".
	Metrics *obs.Registry
	// Observer, when non-nil, receives EvNodeDemand and EvSlotMigrate
	// events.
	Observer obs.Observer
}

func (c RebalancerConfig) withDefaults() RebalancerConfig {
	if c.MaxMovesPerEpoch <= 0 {
		c.MaxMovesPerEpoch = 2
	}
	if c.TakerFrac <= 0 {
		c.TakerFrac = 0.5
	}
	if c.GiverFrac <= 0 {
		c.GiverFrac = 0.25
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256
	}
	return c
}

// Rebalancer applies STEM's taker/giver coupling at node granularity: each
// Epoch it polls every node's demand snapshot (the aggregate of its per-set
// SCDM monitors), classifies saturated nodes as takers and under-utilized
// ones as givers, and migrates up to MaxMovesPerEpoch of the takers'
// coldest loaded virtual-node slots to givers (freeing the taker's
// capacity for its hot data) — request draining, key handoff via MGET/MSET,
// then the ring ownership flip.
//
// Epoch is not safe for concurrent use with itself (one rebalancing loop
// per cluster); it is safe to run concurrently with client traffic.
type Rebalancer struct {
	cl     *Client
	lister KeyLister
	cfg    RebalancerConfig
	epoch  uint64

	// obsMu serializes Observer callbacks (rank 2: the package's innermost
	// lock).
	obsMu sync.Mutex

	epochs, migrations, keysMoved *obs.Counter
}

// Move records one slot migration of an epoch.
type Move struct {
	// Slot is the migrated slot; From and To its old and new owners.
	Slot, From, To int
	// Keys is how many resident keys were handed off.
	Keys int
}

// EpochReport is one Epoch's outcome.
type EpochReport struct {
	// Epoch numbers the call (1-based).
	Epoch uint64
	// Demands holds every node's snapshot, indexed by node.
	Demands []wire.NodeDemand
	// Moves lists the migrations performed (len ≤ MaxMovesPerEpoch).
	Moves []Move
}

// NewRebalancer builds a rebalancer driving cl's ring. lister must
// enumerate the keys resident on a node (see KeyLister).
func NewRebalancer(cl *Client, lister KeyLister, cfg RebalancerConfig) (*Rebalancer, error) {
	if cl == nil {
		return nil, fmt.Errorf("cluster: rebalancer needs a client")
	}
	if lister == nil {
		return nil, fmt.Errorf("cluster: rebalancer needs a key lister")
	}
	cfg = cfg.withDefaults()
	rb := &Rebalancer{cl: cl, lister: lister, cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		rb.epochs = reg.Counter("cluster.epochs")
		rb.migrations = reg.Counter("cluster.migrations")
		rb.keysMoved = reg.Counter("cluster.keys_moved")
	}
	return rb, nil
}

// nodeState is one node's standing within an epoch's planning pass.
type nodeState struct {
	id     int
	demand wire.NodeDemand
	load   uint64
}

// Epoch runs one rebalancing round: poll demands, classify, migrate. The
// report is returned even alongside an error (it reflects what completed).
func (rb *Rebalancer) Epoch() (EpochReport, error) {
	rb.epoch++
	rb.epochs.Inc()
	report := EpochReport{Epoch: rb.epoch}

	n := rb.cl.Nodes()
	report.Demands = make([]wire.NodeDemand, n)
	for i := 0; i < n; i++ {
		// Prefer the push-based snapshot (piggybacked on responses or a
		// heartbeat); poll only nodes nothing has been pushed from yet.
		if d, ok := rb.cl.CachedDemand(i); ok {
			report.Demands[i] = d
			continue
		}
		d, err := rb.cl.Demand(i)
		if err != nil {
			return report, fmt.Errorf("cluster: demand poll of node %d: %w", i, err)
		}
		report.Demands[i] = d
	}

	slotLoads := rb.cl.TakeSlotLoads()
	ring := rb.cl.Ring()
	owners := ring.Owners()
	states := make([]nodeState, n)
	for i := range states {
		states[i] = nodeState{id: i, demand: report.Demands[i]}
	}
	for s, o := range owners {
		states[o].load += slotLoads[s]
	}

	takers, givers := rb.classify(states)
	if len(takers) == 0 || len(givers) == 0 {
		return report, nil
	}

	// Plan migrations: each taker sheds its COLDEST loaded slots to the
	// least loaded giver. Shedding cold slots is the node-level analog of a
	// giver donating ways to a taker set: the saturated node keeps its hot
	// data local and gains the shed slot's capacity for it, while the slack
	// node absorbs load it can easily serve. (Shedding the hottest slot
	// would merely transplant the overload onto the giver.) A move must
	// also improve the pairwise balance — the giver must stay below the
	// taker's pre-move load, mirroring the set-level rule that a giver's
	// SC_S MSB must be clear to accept spills. Load books are updated as
	// moves are planned so one epoch's moves do not all pile onto the same
	// giver.
	moves := 0
	for _, taker := range takers {
		if moves >= rb.cfg.MaxMovesPerEpoch {
			break
		}
		slots := ring.OwnedSlots(taker.id)
		if len(slots) <= 1 {
			continue // never strip a node of its last slot
		}
		sort.Slice(slots, func(i, j int) bool {
			if slotLoads[slots[i]] != slotLoads[slots[j]] {
				return slotLoads[slots[i]] < slotLoads[slots[j]]
			}
			return slots[i] < slots[j]
		})
		for _, slot := range slots {
			if moves >= rb.cfg.MaxMovesPerEpoch || len(ring.OwnedSlots(taker.id)) <= 1 {
				break
			}
			load := slotLoads[slot]
			if load == 0 {
				continue // nothing routed here this epoch: no signal to act on
			}
			g := rb.pickGiver(givers, states, load, states[taker.id].load)
			if g < 0 {
				continue
			}
			mv, err := rb.migrate(slot, taker.id, g)
			if err != nil {
				return report, err
			}
			report.Moves = append(report.Moves, mv)
			states[taker.id].load -= load
			states[g].load += load
			moves++
		}
	}
	return report, nil
}

// demandScore folds a node's snapshot into one starvation figure in
// [0, 1]: the larger of its taker-set fraction (how many sets are pinned
// at saturation right now) and its mean SC_S saturation (how hard the
// whole population of counters is pushing). The max matters: a uniformly
// thrashing cache can hold high mean saturation while few sets sit at the
// exact maximum at poll time, and vice versa.
func demandScore(d wire.NodeDemand) float64 {
	return max(d.TakerFrac(), d.Saturation())
}

// classify splits nodes into takers (demand-saturated, most loaded first)
// and givers (slack, least loaded first). Ties break by node id so the
// plan is deterministic.
func (rb *Rebalancer) classify(states []nodeState) (takers, givers []nodeState) {
	for _, st := range states {
		score := demandScore(st.demand)
		class := "neutral"
		switch {
		case score >= rb.cfg.TakerFrac:
			class = "taker"
			takers = append(takers, st)
		case score <= rb.cfg.GiverFrac:
			class = "giver"
			givers = append(givers, st)
		}
		rb.observe(obs.Event{
			Type: obs.EvNodeDemand, Tick: rb.epoch, Set: st.id,
			ScS: int(st.demand.TakerSets), ScT: int(st.demand.GiverSets),
			Life: uint64(st.demand.CoupledSets), Class: class,
		})
	}
	sort.Slice(takers, func(i, j int) bool {
		if takers[i].load != takers[j].load {
			return takers[i].load > takers[j].load
		}
		return takers[i].id < takers[j].id
	})
	sort.Slice(givers, func(i, j int) bool {
		if givers[i].load != givers[j].load {
			return givers[i].load < givers[j].load
		}
		return givers[i].id < givers[j].id
	})
	return takers, givers
}

// pickGiver returns the id of the least-loaded giver that can absorb a
// slot of the given load while staying below the taker's pre-move load, or
// -1. states carries the live load books (updated by prior planned moves).
func (rb *Rebalancer) pickGiver(givers []nodeState, states []nodeState, slotLoad, takerLoad uint64) int {
	best, bestLoad := -1, uint64(0)
	for _, g := range givers {
		load := states[g.id].load
		if load+slotLoad >= takerLoad {
			continue // the move would not improve the pairwise balance
		}
		if best < 0 || load < bestLoad {
			best, bestLoad = g.id, load
		}
	}
	return best
}

// migrate hands slot from node `from` to node `to` via Client.MoveSlot
// (drain → copy → flip → delete) and records the move's metrics and event.
func (rb *Rebalancer) migrate(slot, from, to int) (Move, error) {
	mv, err := rb.cl.MoveSlot(rb.lister, slot, from, to, rb.cfg.ChunkSize)
	if err != nil {
		return mv, err
	}

	rb.migrations.Inc()
	rb.keysMoved.Add(uint64(mv.Keys))
	rb.observe(obs.Event{
		Type: obs.EvSlotMigrate, Tick: rb.epoch, Set: slot,
		ScS: from, Partner: to, Life: uint64(mv.Keys),
	})
	return mv, nil
}

// observe forwards an event to the configured Observer under obsMu.
func (rb *Rebalancer) observe(e obs.Event) {
	if rb.cfg.Observer == nil {
		return
	}
	rb.obsMu.Lock()
	rb.cfg.Observer.Event(e)
	rb.obsMu.Unlock()
}

// Package cluster scales the STEM capacity story from sets to nodes: N
// stemd servers sit behind a consistent-hash ring, a cluster-aware client
// routes operations and splits batches per owner, and a rebalancer applies
// the paper's taker/giver reasoning one level up — nodes whose caches
// report mostly-saturated SC_S counters (takers) shed virtual-node slots to
// nodes with slack (givers), dragging the resident keys along.
//
// The analogy is deliberate but not exact. Inside a cache, a taker set
// couples with a giver set and both remain owners of their blocks
// (cooperative dual-residency, paper §4.5). Between nodes, a slot migration
// *moves ownership*: after the handoff exactly one node serves the slot.
// DESIGN.md §11 spells out why (a network cache cannot afford a second
// network hop per miss to probe a partner node, the way a second set probe
// within an LLC can).
//
// The package has three lock classes, ranked Ring.mu → Node.mu →
// Rebalancer.obsMu (enforced by the stemlint lockorder analyzer). None of
// them is held across a network call.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hashfn"
)

// Ring is a consistent-hash ring with a fixed slot set and movable
// ownership: nodes × vnodes slots are placed on the ring at
// seed-deterministic points once, and rebalancing changes only which node
// owns a slot — the key→slot mapping never moves, so a migration's blast
// radius is exactly the keys of the migrated slot.
//
// All methods are safe for concurrent use. Ring.mu is the package's
// top-ranked lock.
type Ring struct {
	slots int
	seed  uint64
	// points is sorted ascending; lookup walks clockwise to the first point
	// at or after the key's point.
	points []ringPoint
	// hi/lo hash a key's 64-bit digest onto the ring (two independent H3
	// halves — the same hardware-hash family the shadow directory uses).
	hi, lo *hashfn.Hash

	// mu guards nodes, owner, epochs, and version (rank 0: above Node.mu
	// and obsMu).
	mu    sync.RWMutex
	nodes int
	owner []int
	// epochs[s] counts slot s's ownership flips — strictly monotone per
	// slot, so a stale view of "who owns s" is detectable by epoch compare
	// (membership failover and client retry both lean on this).
	epochs  []uint64
	version uint64
}

// ringPoint is one slot's fixed position on the ring. Ties on point are
// broken by slot id so the sort is total and deterministic.
type ringPoint struct {
	point uint64
	slot  int
}

// NewRing builds a ring for nodes servers with vnodes slots each, placed
// deterministically from seed. Initially slot s belongs to node s mod nodes
// (every node owns exactly vnodes slots).
func NewRing(nodes, vnodes int, seed uint64) (*Ring, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one node, got %d", nodes)
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one vnode per node, got %d", vnodes)
	}
	r := &Ring{
		nodes: nodes,
		slots: nodes * vnodes,
		seed:  seed,
		hi:    hashfn.New(32, mix64(seed^0x736c6f74686967)), // "slothig"
		lo:    hashfn.New(32, mix64(seed^0x736c6f746c6f77)), // "slotlow"
	}
	r.points = make([]ringPoint, r.slots)
	r.owner = make([]int, r.slots)
	r.epochs = make([]uint64, r.slots)
	for s := 0; s < r.slots; s++ {
		r.points[s] = ringPoint{point: r.pointOf(mix64(seed + uint64(s) + 1)), slot: s}
		r.owner[s] = s % nodes
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		return r.points[i].slot < r.points[j].slot
	})
	return r, nil
}

// pointOf maps a 64-bit digest to a ring position via the two H3 halves.
// The digest is pre-mixed so tag bits are dense (H3 ignores zero bits).
func (r *Ring) pointOf(digest uint64) uint64 {
	return uint64(r.hi.Sum(digest))<<32 | uint64(r.lo.Sum(digest))
}

// fnv64 is FNV-1a over the key bytes — the key's 64-bit digest.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix64 is splitmix64's finalizer (full-avalanche 64→64 mixing).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SlotOfKey returns the slot owning key: the first slot point clockwise
// from the key's ring position. The mapping is a pure function of (seed,
// key) — it never changes as ownership moves.
func (r *Ring) SlotOfKey(key string) int {
	p := r.pointOf(mix64(fnv64(key) ^ r.seed))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.points[i].slot
}

// Owner returns the node currently owning slot.
func (r *Ring) Owner(slot int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.owner[slot]
}

// Lookup routes key to its current owner, returning the node and the slot
// (the slot is what a router records as the load-accounting bucket).
func (r *Ring) Lookup(key string) (node, slot int) {
	slot = r.SlotOfKey(key)
	r.mu.RLock()
	node = r.owner[slot]
	r.mu.RUnlock()
	return node, slot
}

// Move transfers slot's ownership to node, bumps the slot's epoch and the
// ring version. The caller (the rebalancer or the membership manager) is
// responsible for having copied the slot's keys first — except on failover,
// where the old owner is dead and the keys come from the promoted replica.
func (r *Ring) Move(slot, node int) error {
	if slot < 0 || slot >= r.slots {
		return fmt.Errorf("cluster: slot %d out of range [0, %d)", slot, r.slots)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if node < 0 || node >= r.nodes {
		return fmt.Errorf("cluster: node %d out of range [0, %d)", node, r.nodes)
	}
	if r.owner[slot] != node {
		r.owner[slot] = node
		r.epochs[slot]++
	}
	r.version++
	return nil
}

// AddNode grows the node set by one and returns the new node's id. The slot
// set is fixed at construction, so the new node owns nothing until Move
// assigns it slots — which is what keeps a join's movement bounded to the
// slots explicitly handed over.
func (r *Ring) AddNode() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes++
	return r.nodes - 1
}

// SlotEpoch returns slot's ownership epoch (the number of times its owner
// has changed). Strictly monotone per slot.
func (r *Ring) SlotEpoch(slot int) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epochs[slot]
}

// Epochs returns a copy of the per-slot ownership-epoch table.
func (r *Ring) Epochs() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]uint64, len(r.epochs))
	copy(out, r.epochs)
	return out
}

// OwnedSlots returns node's slots in ascending order.
func (r *Ring) OwnedSlots(node int) []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var slots []int
	for s, o := range r.owner {
		if o == node {
			slots = append(slots, s)
		}
	}
	return slots
}

// Owners returns a copy of the slot→node ownership table.
func (r *Ring) Owners() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, len(r.owner))
	copy(out, r.owner)
	return out
}

// Nodes returns the node count (it can grow via AddNode).
func (r *Ring) Nodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes
}

// Slots returns the total slot count (nodes × vnodes).
func (r *Ring) Slots() int { return r.slots }

// Version counts Move calls — a cheap "did ownership change" check.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

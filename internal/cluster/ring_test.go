package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(3, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(3, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewRing(3, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.SlotOfKey(k) != b.SlotOfKey(k) {
			t.Fatalf("equal seeds map %q to slots %d and %d", k, a.SlotOfKey(k), b.SlotOfKey(k))
		}
		if a.SlotOfKey(k) != other.SlotOfKey(k) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical key→slot mappings")
	}
}

func TestRingInitialOwnership(t *testing.T) {
	const nodes, vnodes = 4, 6
	r, err := NewRing(nodes, vnodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slots() != nodes*vnodes || r.Nodes() != nodes {
		t.Fatalf("Slots=%d Nodes=%d, want %d and %d", r.Slots(), r.Nodes(), nodes*vnodes, nodes)
	}
	for n := 0; n < nodes; n++ {
		owned := r.OwnedSlots(n)
		if len(owned) != vnodes {
			t.Fatalf("node %d owns %d slots, want %d", n, len(owned), vnodes)
		}
		for _, s := range owned {
			if r.Owner(s) != n || s%nodes != n {
				t.Fatalf("slot %d owned by %d, want %d", s, r.Owner(s), s%nodes)
			}
		}
	}
}

func TestRingMoveChangesOwnerNotMapping(t *testing.T) {
	r, err := NewRing(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key and remember its slot.
	key := "victim"
	slot := r.SlotOfKey(key)
	oldNode, gotSlot := r.Lookup(key)
	if gotSlot != slot {
		t.Fatalf("Lookup slot %d != SlotOfKey %d", gotSlot, slot)
	}
	to := (oldNode + 1) % 3
	if err := r.Move(slot, to); err != nil {
		t.Fatal(err)
	}
	if r.SlotOfKey(key) != slot {
		t.Fatal("Move changed the key→slot mapping")
	}
	if node, _ := r.Lookup(key); node != to {
		t.Fatalf("after Move, Lookup routes to %d, want %d", node, to)
	}
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	if err := r.Move(99, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := r.Move(0, 9); err == nil {
		t.Fatal("out-of-range node accepted")
	}

	// Ownership accounting follows the move.
	owners := r.Owners()
	if owners[slot] != to {
		t.Fatalf("Owners()[%d] = %d, want %d", slot, owners[slot], to)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing(3, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, r.Slots())
	const n = 50_000
	for i := 0; i < n; i++ {
		counts[r.SlotOfKey(fmt.Sprintf("spread-%d", i))]++
	}
	empty := 0
	for _, c := range counts {
		if c == 0 {
			empty++
		}
	}
	// 48 slots over 50k keys: every slot should see traffic (an empty slot
	// means a degenerate arc).
	if empty > 0 {
		t.Fatalf("%d of %d slots received no keys", empty, r.Slots())
	}
}

func TestRingRejectsBadGeometry(t *testing.T) {
	if _, err := NewRing(0, 4, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewRing(3, 0, 1); err == nil {
		t.Fatal("zero vnodes accepted")
	}
}

func TestNodeSeedsDiffer(t *testing.T) {
	seen := map[uint64]int{}
	for id := 0; id < 64; id++ {
		s := NodeSeed(99, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("nodes %d and %d share seed %d", prev, id, s)
		}
		seen[s] = id
	}
	if NodeSeed(1, 0) == NodeSeed(2, 0) {
		t.Fatal("cluster seeds 1 and 2 give node 0 the same seed")
	}
}

// Package sim provides the shared primitives every cache model in this
// repository is built from: cache geometry and block addressing, the
// Simulator interface all management schemes implement, the per-access
// Outcome record consumed by the timing model, aggregate Stats, and a
// deterministic random-number stream.
//
// Addresses are byte addresses. A "block address" is the byte address with
// the line-offset bits stripped (addr >> log2(LineSize)). All schemes operate
// on block addresses; Geometry performs the index/tag split.
package sim

import "fmt"

// Geometry describes the physical organization of a set-associative cache.
type Geometry struct {
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Ways is the associativity (cache lines per set).
	Ways int
	// LineSize is the cache-line size in bytes; must be a power of two.
	LineSize int
}

// Validate reports whether the geometry is well formed.
func (g Geometry) Validate() error {
	switch {
	case g.Sets <= 0 || g.Sets&(g.Sets-1) != 0:
		return fmt.Errorf("sim: Sets must be a positive power of two, got %d", g.Sets)
	case g.Ways <= 0:
		return fmt.Errorf("sim: Ways must be positive, got %d", g.Ways)
	case g.LineSize <= 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("sim: LineSize must be a positive power of two, got %d", g.LineSize)
	}
	return nil
}

// CapacityBytes returns the total data capacity of the cache.
func (g Geometry) CapacityBytes() int { return g.Sets * g.Ways * g.LineSize }

// OffsetBits returns log2(LineSize).
func (g Geometry) OffsetBits() uint { return uint(log2(g.LineSize)) }

// IndexBits returns log2(Sets).
func (g Geometry) IndexBits() uint { return uint(log2(g.Sets)) }

// BlockAddr strips the line-offset bits from a byte address.
func (g Geometry) BlockAddr(addr uint64) uint64 { return addr >> g.OffsetBits() }

// Index returns the set index a block address maps to (MOD mapping, the
// conventional scheme described in paper §2.1).
func (g Geometry) Index(block uint64) int { return int(block & uint64(g.Sets-1)) }

// Tag returns the tag portion of a block address.
func (g Geometry) Tag(block uint64) uint64 { return block >> g.IndexBits() }

// BlockFor reconstructs a block address from a (tag, set index) pair. It is
// the inverse of the Index/Tag split and is the primitive workload generators
// use to aim references at specific sets.
func (g Geometry) BlockFor(tag uint64, set int) uint64 {
	return tag<<g.IndexBits() | uint64(set)
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Access is a single reference presented to a cache.
type Access struct {
	// Block is the block address (byte address >> offset bits).
	Block uint64
	// Write marks stores; used only for dirty-bit accounting.
	Write bool
}

// Outcome describes what happened on one access, in enough detail for the
// timing model (internal/mem) to charge the latencies of paper §5.1.
type Outcome struct {
	// Hit is true if the block was found on chip (locally or cooperatively).
	Hit bool
	// Secondary is true if a second set was probed (SBC/STEM coupled sets).
	// A secondary probe costs an extra tag-store access whether or not it
	// hits.
	Secondary bool
	// SecondaryHit is true if the block was found in the partner set; implies
	// Hit && Secondary.
	SecondaryHit bool
	// Writeback is true if a dirty block was evicted off chip on this access.
	Writeback bool
}

// Simulator is the interface every LLC management scheme implements.
//
// Implementations are single-goroutine state machines: Access mutates
// internal state and is not safe for concurrent use. All schemes are
// deterministic given their construction seed.
type Simulator interface {
	// Name returns the scheme's short name (e.g. "LRU", "STEM").
	Name() string
	// Geometry returns the cache organization being simulated.
	Geometry() Geometry
	// Access presents one reference and returns what happened.
	Access(a Access) Outcome
	// Stats returns the aggregate counters accumulated so far.
	Stats() Stats
	// ResetStats zeroes the aggregate counters without disturbing cache
	// contents (used to discard warm-up).
	ResetStats()
}

// Stats aggregates the outcome counters every Simulator maintains.
type Stats struct {
	Accesses      uint64 // total references presented
	Hits          uint64 // references that hit on chip
	Misses        uint64 // references that went to memory
	SecondaryHits uint64 // hits served from a partner set (subset of Hits)
	SecondaryRefs uint64 // references that probed a partner set
	Writebacks    uint64 // dirty evictions
	Spills        uint64 // victims placed cooperatively instead of evicted
	Receives      uint64 // foreign blocks accepted by a giver set (== Spills)
	PolicySwaps   uint64 // set-level replacement-policy swaps (STEM)
	Couplings     uint64 // set pairs formed
	Decouplings   uint64 // set pairs dissolved
	ShadowHits    uint64 // misses whose signature hit the shadow directory (STEM)
}

// Record folds one outcome into the counters.
func (s *Stats) Record(o Outcome) {
	s.Accesses++
	if o.Hit {
		s.Hits++
	} else {
		s.Misses++
	}
	if o.Secondary {
		s.SecondaryRefs++
	}
	if o.SecondaryHit {
		s.SecondaryHits++
	}
	if o.Writeback {
		s.Writebacks++
	}
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"paper L2", Geometry{Sets: 2048, Ways: 16, LineSize: 64}, true},
		{"two-set toy", Geometry{Sets: 2, Ways: 4, LineSize: 64}, true},
		{"single set", Geometry{Sets: 1, Ways: 8, LineSize: 32}, true},
		{"non-pow2 sets", Geometry{Sets: 3, Ways: 4, LineSize: 64}, false},
		{"zero sets", Geometry{Sets: 0, Ways: 4, LineSize: 64}, false},
		{"zero ways", Geometry{Sets: 4, Ways: 0, LineSize: 64}, false},
		{"negative ways", Geometry{Sets: 4, Ways: -1, LineSize: 64}, false},
		{"non-pow2 line", Geometry{Sets: 4, Ways: 4, LineSize: 48}, false},
		{"zero line", Geometry{Sets: 4, Ways: 4, LineSize: 0}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.g.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", c.g, err, c.ok)
			}
		})
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := Geometry{Sets: 2048, Ways: 16, LineSize: 64}
	if got, want := g.CapacityBytes(), 2<<20; got != want {
		t.Fatalf("CapacityBytes = %d, want %d (2MB paper config)", got, want)
	}
	if got, want := g.OffsetBits(), uint(6); got != want {
		t.Fatalf("OffsetBits = %d, want %d", got, want)
	}
	if got, want := g.IndexBits(), uint(11); got != want {
		t.Fatalf("IndexBits = %d, want %d", got, want)
	}
}

func TestGeometryIndexTagRoundTrip(t *testing.T) {
	g := Geometry{Sets: 64, Ways: 8, LineSize: 64}
	f := func(block uint64) bool {
		idx := g.Index(block)
		tag := g.Tag(block)
		return g.BlockFor(tag, idx) == block && idx >= 0 && idx < g.Sets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryBlockAddr(t *testing.T) {
	g := Geometry{Sets: 8, Ways: 2, LineSize: 64}
	// All byte addresses within one line collapse to the same block.
	base := uint64(0x12340)
	want := g.BlockAddr(base)
	for off := uint64(0); off < 64; off++ {
		if got := g.BlockAddr(base + off); got != want {
			t.Fatalf("BlockAddr(%#x) = %#x, want %#x", base+off, got, want)
		}
	}
	if g.BlockAddr(base+64) == want {
		t.Fatal("next line collapsed into the same block")
	}
}

func TestGeometrySameIndexCongruence(t *testing.T) {
	// Blocks whose addresses are congruent mod Sets map to the same set
	// (the MOD mapping of paper §2.1).
	g := Geometry{Sets: 32, Ways: 4, LineSize: 64}
	for i := 0; i < 100; i++ {
		b := uint64(i)*uint64(g.Sets) + 7
		if g.Index(b) != 7 {
			t.Fatalf("Index(%d) = %d, want 7", b, g.Index(b))
		}
	}
}

func TestStatsRecord(t *testing.T) {
	var s Stats
	s.Record(Outcome{Hit: true})
	s.Record(Outcome{Hit: false, Writeback: true})
	s.Record(Outcome{Hit: true, Secondary: true, SecondaryHit: true})
	s.Record(Outcome{Hit: false, Secondary: true})
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("basic counters wrong: %+v", s)
	}
	if s.SecondaryRefs != 2 || s.SecondaryHits != 1 {
		t.Fatalf("secondary counters wrong: %+v", s)
	}
	if s.Writebacks != 1 {
		t.Fatalf("writebacks wrong: %+v", s)
	}
	if s.MissRate() != 0.5 || s.HitRate() != 0.5 {
		t.Fatalf("rates wrong: miss=%v hit=%v", s.MissRate(), s.HitRate())
	}
}

func TestStatsEmptyRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Fatal("empty stats must report zero rates")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsIndependent(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws", same)
	}
}

func TestRNGZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-value RNG stuck at zero")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 33; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGOneInFrequency(t *testing.T) {
	// OneIn(8) should fire roughly 1/8 of the time; this mirrors the 1/2^n
	// probabilistic decrement STEM uses (n=3).
	r := NewRNG(1234)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.OneIn(8) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.115 || got > 0.135 {
		t.Fatalf("OneIn(8) frequency %v, want ~0.125", got)
	}
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(5)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) fired")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) did not fire")
	}
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bernoulli(0.3) frequency %v", got)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-square-ish sanity over 16 buckets.
	r := NewRNG(99)
	const trials = 160000
	var buckets [16]int
	for i := 0; i < trials; i++ {
		buckets[r.Intn(16)]++
	}
	want := trials / 16
	for b, n := range buckets {
		if n < want*9/10 || n > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, n, want)
		}
	}
}

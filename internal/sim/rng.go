package sim

// RNG is a deterministic 64-bit pseudo-random stream (xorshift64* seeded
// through splitmix64). Every probabilistic device in the repository — BIP's
// 1/32 MRU insertion, STEM's 1/2^n spatial-counter decrement, workload
// mixtures — draws from an RNG owned by its component, so runs are exactly
// reproducible from their seeds and components do not perturb one another.
//
// The zero value is usable (it is reseeded to a fixed non-zero state).
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded from seed. Distinct seeds give independent
// streams; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the stream. The seed is diffused through splitmix64 so
// that consecutive small seeds give uncorrelated streams.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	if r.state == 0 {
		r.Seed(0)
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		// invariant: mirrors math/rand.Intn's contract; callers always pass set or way counts >= 1.
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OneIn reports true with probability 1/n. It panics if n <= 0.
func (r *RNG) OneIn(n int) bool { return r.Intn(n) == 0 }

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Classify: demonstrate the paper's three-way workload taxonomy (Figure 6)
// by running one representative analog from each class through all six
// schemes, plus the §3.1 capacity-demand profiler that tells the classes
// apart before any scheme runs.
//
//   - Class I (ammp): non-uniform set-level demand — spatial headroom.
//   - Class II (mcf): poor temporal locality — temporal headroom.
//   - Class III (twolf): LRU is already sufficient.
package main

import (
	"fmt"

	stem "repro"
)

func main() {
	geom := stem.Geometry{Sets: 512, Ways: 16, LineSize: 64}
	cfg := stem.RunConfig{Geom: geom, Warmup: 300_000, Measure: 900_000}

	for _, name := range []string{"ammp", "mcf", "twolf"} {
		b := stem.MustBenchmark(name)
		fmt.Printf("== %s (Class %d) ==\n", b.Name, b.Class)

		// First, characterize: what do the sets actually need? The profiler
		// measures, per set, the minimum lines that would resolve all
		// conflict misses a 32-way set would resolve.
		prof := stem.NewDemandProfiler(geom, 50_000, 32)
		gen := stem.NewGenerator(b.Workload, geom, 1)
		for i := 0; i < 250_000; i++ {
			prof.Feed(gen.Next().Block)
		}
		prof.Flush()
		last := prof.Periods()[len(prof.Periods())-1]
		low, mid, high := 0.0, 0.0, 0.0
		for band := 0; band < last.Bands(); band++ {
			switch {
			case band <= 4: // demand 0-8
				low += last.Fraction(band)
			case band <= 8: // demand 9-16
				mid += last.Fraction(band)
			default: // demand 17-32
				high += last.Fraction(band)
			}
		}
		fmt.Printf("set demand:  %4.0f%% of sets need <=8 lines, %4.0f%% need 9-16, %4.0f%% need 17-32\n",
			100*low, 100*mid, 100*high)

		// Then run the schemes and normalize to LRU.
		lru, err := stem.RunWorkload(b.Workload, "LRU", cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("LRU MPKI %.3f; normalized:", lru.MPKI)
		for _, scheme := range []string{"DIP", "PELIFO", "VWAY", "SBC", "STEM"} {
			res, err := stem.RunWorkload(b.Workload, scheme, cfg)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %s %.3f", scheme, res.MPKI/lru.MPKI)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("Reading: Class I rewards spatial schemes (SBC/STEM), Class II rewards")
	fmt.Println("temporal schemes (DIP/PELIFO/STEM), Class III rewards leaving LRU alone —")
	fmt.Println("and STEM is the only scheme competitive in all three rows.")
}

// Smoke coverage for the runnable examples: each must build and execute to
// completion with useful output. The examples double as the public API's
// integration tests — if one stops compiling or crashes, the README's
// entry points are broken.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

var programs = []string{"classify", "custompolicy", "hierarchy", "quickstart", "synthetic"}

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take ~10s combined; skipped in -short mode")
	}
	bindir := t.TempDir()
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			build.Dir = "." // examples/
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", name, err, out)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin)
			out, err := cmd.Output()
			if err != nil {
				var stderr []byte
				if ee, ok := err.(*exec.ExitError); ok {
					stderr = ee.Stderr
				}
				t.Fatalf("%s failed: %v\n%s", name, err, stderr)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", name)
			}
		})
	}
}

func TestMain(m *testing.M) {
	// go test runs with CWD = examples/; make sure that holds even if the
	// harness changes (the build commands rely on it).
	if _, err := os.Stat("quickstart"); err != nil {
		panic("examples smoke test must run from the examples/ directory: " + err.Error())
	}
	os.Exit(m.Run())
}

// Quickstart: build the paper's STEM LLC and the LRU baseline, run both on
// the omnetpp analog (a Class I workload with non-uniform set-level
// capacity demands), and compare the paper's three metrics.
package main

import (
	"fmt"

	stem "repro"
)

func main() {
	// The paper's standard configuration: 2MB, 16-way, 64-byte lines.
	geom := stem.PaperGeometry
	cfg := stem.RunConfig{Geom: geom, Warmup: 500_000, Measure: 1_500_000}

	// Pick a workload. The suite has an analog for each of the paper's 15
	// SPEC benchmarks; omnetpp is Class I, STEM's home turf.
	bench := stem.MustBenchmark("omnetpp")
	fmt.Printf("workload: %s (class %d, paper LRU MPKI %.2f)\n\n",
		bench.Name, bench.Class, bench.PaperMPKI)

	fmt.Println("scheme     miss-rate     MPKI     AMAT      CPI")
	for _, scheme := range []string{"LRU", "STEM"} {
		res, err := stem.RunWorkload(bench.Workload, scheme, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s   %9.4f  %7.3f  %7.2f  %7.3f\n",
			scheme, res.MissRate, res.MPKI, res.AMAT, res.CPI)
	}

	// The same machinery works for hand-rolled workloads: describe the
	// set-level structure and let the generator do the rest.
	custom := stem.Workload{
		Name: "custom", APKI: 20, WriteFrac: 0.3,
		Groups: []stem.Group{
			// Half the sets stream (no reuse), half cycle through a working
			// set 1.5x the associativity — the classic giver/taker mix.
			{Name: "givers", Frac: 0.5, Weight: 0.5, Pat: stem.Pattern{Kind: stem.Scan}},
			{Name: "takers", Frac: 0.5, Weight: 1.0, Pat: stem.Pattern{Kind: stem.Cyclic, N: 24}},
		},
	}
	fmt.Println("\ncustom giver/taker workload:")
	for _, scheme := range []string{"LRU", "DIP", "SBC", "STEM"} {
		res, err := stem.RunWorkload(custom, scheme, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s   miss-rate %.4f   (couplings %d, spills %d, policy swaps %d)\n",
			scheme, res.MissRate, res.Stats.Couplings+res.Stats.Decouplings,
			res.Stats.Spills, res.Stats.PolicySwaps)
	}
}

// Synthetic: replay the paper's Figure 2 — three deterministic workloads on
// a toy two-set, four-way LLC that isolate the difference between temporal
// (DIP) and spatial (SBC) capacity management, and the gap STEM closes.
//
// Working set 0 cycles through six blocks A..F mapped to LLC set 0; working
// set 1 holds 2, 3 or 5 blocks in LLC set 1 depending on the example. With
// two blocks (example #1) the pairing is perfect and SBC/STEM cache both
// working sets entirely; with three (example #2) the cooperative capacity is
// insufficient and only a scheme that manages both dimensions at once keeps
// the miss rate low (the paper's "extensional example"); with five
// (example #3) there is no spare capacity anywhere and only the insertion
// policy can help.
package main

import (
	"fmt"

	stem "repro"
)

func main() {
	fmt.Println("Figure 2 geometry: 2 sets x 4 ways")
	fmt.Println()
	fmt.Println("ex   ws1   LRU meas (paper)   DIP meas (paper*)   SBC meas (paper)   STEM meas")
	ws1 := map[int]int{1: 2, 2: 3, 3: 5}
	for _, r := range stem.Figure2(0) {
		fmt.Printf("#%d    %d    %.3f (%.3f)       %.3f (%.3f)        %.3f (%.3f)       %.3f\n",
			r.Example, ws1[r.Example],
			r.LRU, r.ExpLRU, r.DIP, r.ExpDIP, r.SBC, r.ExpSBC, r.STEM)
	}
	fmt.Println()
	fmt.Println("* the paper's DIP column assumes an oracle that already knows the")
	fmt.Println("  working sets; the measured column runs real set-dueling, which on a")
	fmt.Println("  two-set cache has no follower sets to adapt.")
	fmt.Println()

	// Drive example #2 step by step to watch STEM work: the taker (set 0)
	// couples with the giver (set 1), spills victims into it, and swaps its
	// own policy when the shadow set shows BIP winning.
	cache := stem.New(stem.Figure2Geometry, stem.Config{Seed: 7})
	gen := stem.Figure2Workload(2)
	for i := 0; i < 4000; i++ {
		r := gen.Next()
		cache.Access(stem.Access{Block: r.Block, Write: r.Write})
	}
	st := cache.Stats()
	fmt.Printf("STEM on example #2 after %d accesses:\n", st.Accesses)
	fmt.Printf("  miss rate %.3f (paper bound for the extensional example: <= 0.167+)\n", st.MissRate())
	fmt.Printf("  couplings %d, spills %d, cooperative hits %d, policy swaps %d\n",
		st.Couplings, st.Spills, st.SecondaryHits, st.PolicySwaps)
}

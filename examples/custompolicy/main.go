// Custompolicy: extend the library with a replacement policy of your own
// and race it against the built-ins on the paper's workloads.
//
// The stem.Policy interface is the per-set kernel every scheme in the
// repository is built from: the cache reports hits, inserts and
// invalidations; the policy answers "which way do I evict". This example
// implements SFIFO — FIFO with one second-chance bit — from scratch and
// runs it against LRU and BIP on a thrashing and a recency-friendly analog.
package main

import (
	"fmt"

	stem "repro"
)

// sfifo is FIFO with a second-chance (reference) bit: hits set the bit; the
// victim scan skips (and clears) referenced ways once. It approximates LRU
// at a fraction of the hardware cost — and, like LRU, it still thrashes on
// cyclic working sets, which is why STEM duels policies instead of fixing
// one.
type sfifo struct {
	order []int // FIFO queue of present ways, index 0 = oldest
	ref   []bool
	pos   []int // pos[w] = index in order, -1 if absent
}

func newSFIFO(ways int) *sfifo {
	p := &sfifo{ref: make([]bool, ways), pos: make([]int, ways)}
	for i := range p.pos {
		p.pos[i] = -1
	}
	return p
}

func (p *sfifo) Kind() stem.PolicyKind { return stem.Random /* closest label; unused */ }
func (p *sfifo) Len() int              { return len(p.order) }

func (p *sfifo) Reset() {
	p.order = p.order[:0]
	for i := range p.pos {
		p.pos[i] = -1
		p.ref[i] = false
	}
}

func (p *sfifo) OnHit(way int) {
	if p.pos[way] < 0 {
		p.OnInsert(way)
		return
	}
	p.ref[way] = true
}

func (p *sfifo) OnInsert(way int) {
	if p.pos[way] >= 0 {
		p.ref[way] = true
		return
	}
	p.pos[way] = len(p.order)
	p.order = append(p.order, way)
	p.ref[way] = false
}

func (p *sfifo) OnInvalidate(way int) {
	i := p.pos[way]
	if i < 0 {
		return
	}
	copy(p.order[i:], p.order[i+1:])
	p.order = p.order[:len(p.order)-1]
	for j := i; j < len(p.order); j++ {
		p.pos[p.order[j]] = j
	}
	p.pos[way] = -1
	p.ref[way] = false
}

func (p *sfifo) Victim() int {
	if len(p.order) == 0 {
		return -1
	}
	for pass := 0; pass < 2; pass++ {
		for i, w := range p.order {
			if !p.ref[w] {
				// Rotate the skipped prefix to the back, keeping FIFO order.
				p.order = append(p.order[i:], p.order[:i]...)
				for j, ww := range p.order {
					p.pos[ww] = j
				}
				return w
			}
			p.ref[w] = false // second chance consumed
		}
	}
	return p.order[0]
}

func main() {
	geom := stem.Geometry{Sets: 512, Ways: 16, LineSize: 64}
	cfg := stem.RunConfig{Geom: geom, Warmup: 200_000, Measure: 600_000}

	build := func(name string) func() stem.Simulator {
		return func() stem.Simulator {
			switch name {
			case "SFIFO":
				return stem.NewCustomCache("SFIFO", geom, 1,
					func(set, ways int, rng *stem.RNG) stem.Policy { return newSFIFO(ways) })
			default:
				kind := stem.LRU
				if name == "BIP" {
					kind = stem.BIP
				}
				return stem.NewCustomCache(name, geom, 1,
					func(set, ways int, rng *stem.RNG) stem.Policy { return stem.NewPolicy(kind, ways, rng) })
			}
		}
	}

	for _, bench := range []string{"mcf", "gobmk"} {
		b := stem.MustBenchmark(bench)
		fmt.Printf("== %s (Class %d) ==\n", b.Name, b.Class)
		for _, name := range []string{"LRU", "BIP", "SFIFO"} {
			cache := build(name)()
			gen := stem.NewGenerator(b.Workload, geom, 7)
			res := stem.Run(cache, gen, cfg)
			fmt.Printf("  %-6s miss rate %.4f   MPKI %.3f\n", name, res.MissRate, res.MPKI)
		}
		fmt.Println()
	}
	fmt.Println("SFIFO tracks LRU on the recency-friendly workload and, like LRU,")
	fmt.Println("collapses on the thrashing one — single fixed policies always have a")
	fmt.Println("comfort zone, which is the paper's case for set-level adaptation.")
}

// Hierarchy: run the full Table 1 memory hierarchy — split 32KB L1I/L1D, a
// 16-byte half-speed bus, and a 2MB LLC — over a CPU-level byte-address
// stream, and measure AMAT/CPI directly instead of estimating them from the
// LLC stream.
//
// This is the measurement path behind the paper's Figures 8 and 9: every
// CPU access pays the L1 hit time, L1 misses pay the §5.1 L2 latencies
// (including the 12/20-cycle double-probe costs of SBC/STEM coupling), and
// L1 writebacks cross the bus without blocking the demand path.
package main

import (
	"fmt"

	stem "repro"
)

func main() {
	geom := stem.PaperGeometry
	bench := stem.MustBenchmark("omnetpp")

	fmt.Println("Table 1 hierarchy: 32KB 2-way L1I/L1D, 16B half-speed bus, 2MB LLC")
	fmt.Printf("workload: %s, expanded to 4 CPU accesses per cached line\n\n", bench.Name)
	fmt.Println("L2 scheme    L1D miss%   L2 MPKI    AMAT     CPI   bus-util   L1D->L2 writebacks")

	for _, scheme := range []string{"LRU", "DIP", "STEM"} {
		l2, err := stem.NewScheme(scheme, geom, 42)
		if err != nil {
			panic(err)
		}
		h := stem.NewHierarchy(l2, stem.HierarchyConfig{Seed: 7})
		cpu := stem.NewCPULevel(
			stem.NewGenerator(bench.Workload, geom, 1),
			geom.LineSize,
			4, // each line touched four times at the CPU level
		)
		// Warm both levels, then measure.
		const warm, measure = 800_000, 2_400_000
		for i := 0; i < warm; i++ {
			addr, write, _ := cpu.NextByte()
			h.Data(addr, write, 0)
		}
		l2.ResetStats()
		before := h.Stats() // hierarchy stats keep accumulating; diff them
		for i := 0; i < measure; i++ {
			addr, write, instrs := cpu.NextByte()
			h.Data(addr, write, instrs)
		}
		st := h.Stats()
		l1dAcc := st.L1DAccesses - before.L1DAccesses
		l1dMiss := st.L1DMisses - before.L1DMisses
		fmt.Printf("%-10s   %8.2f%%  %8.3f  %6.2f  %6.3f   %7.4f   %d\n",
			scheme,
			100*float64(l1dMiss)/float64(l1dAcc),
			h.MPKI(), h.AMAT(), h.CPI(), h.BusUtilization(),
			st.Writebacks-before.Writebacks)
	}

	fmt.Println()
	fmt.Println("Because the L1 filters the repeats, the LLC sees the same set-level")
	fmt.Println("stream the trace-level harness uses — but AMAT/CPI here are measured")
	fmt.Println("over real L1 accesses rather than estimated from per-benchmark rates.")
}

// Package stem is the public API of this repository: a from-scratch Go
// reproduction of "STEM: Spatiotemporal Management of Capacity for
// Intra-Core Last Level Caches" (Zhan, Jiang, Seth — MICRO 2010).
//
// The package re-exports, behind one import, everything a downstream user
// needs:
//
//   - the STEM last-level-cache model itself (New) and the five baseline
//     schemes of the paper's evaluation — LRU, DIP, PeLIFO, V-Way and SBC —
//     via NewScheme;
//   - the trace model and synthetic workload machinery (NewGenerator,
//     Benchmarks, the Figure-2 toy workloads);
//   - the per-set capacity-demand profiler of the paper's §3.1;
//   - the timing model (AMAT/CPI) and run harness;
//   - one experiment runner per table and figure of the paper (Figure1,
//     Figure2, Sweep, MainComparison, Table3);
//   - a production-style concurrent key-value cache (Cache, NewCache) whose
//     eviction engine is the paper's mechanism — the reproduction turned
//     into a usable library.
//
// # Quickstart
//
//	cache, _ := stem.NewScheme("STEM", stem.PaperGeometry, 42)
//	gen := stem.NewGenerator(stem.MustBenchmark("omnetpp").Workload, stem.PaperGeometry, 1)
//	res := stem.Run(cache, gen, stem.RunConfig{})
//	fmt.Printf("MPKI %.3f  AMAT %.1f\n", res.MPKI, res.AMAT)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the paper-to-module map.
package stem

import (
	"io"

	"repro/internal/basecache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stemcache"
	"repro/internal/trace"
	"repro/internal/tracefile"
	"repro/internal/workloads"
)

// Core simulation types.
type (
	// Geometry describes a cache organization (sets × ways × line size).
	Geometry = sim.Geometry
	// Access is one block-level reference presented to a cache.
	Access = sim.Access
	// Outcome describes what one access did (hit, secondary probe, ...).
	Outcome = sim.Outcome
	// Stats aggregates a simulator's counters.
	Stats = sim.Stats
	// Simulator is the interface every cache-management scheme implements.
	Simulator = sim.Simulator
	// RNG is the deterministic random stream used across the repository.
	RNG = sim.RNG
)

// Workload and trace types.
type (
	// Ref is one trace record: a block access plus retired instructions.
	Ref = trace.Ref
	// Generator produces an unbounded reference stream.
	Generator = trace.Generator
	// Pattern parameterizes a per-set synthetic access pattern.
	Pattern = trace.Pattern
	// Group assigns a pattern to a fraction of a cache's sets.
	Group = trace.Group
	// Workload is a full synthetic benchmark specification.
	Workload = trace.Workload
	// Benchmark is one entry of the 15-analog SPEC substitute suite.
	Benchmark = workloads.Benchmark
	// Class is the paper's workload taxonomy (I, II, III).
	Class = workloads.Class
)

// Pattern kinds, re-exported for workload construction.
const (
	Cyclic  = trace.Cyclic
	Zipf    = trace.Zipf
	Stream  = trace.Stream
	Pairs   = trace.Pairs
	HotCold = trace.HotCold
	Scan    = trace.Scan
)

// Workload classes.
const (
	ClassI   = workloads.ClassI
	ClassII  = workloads.ClassII
	ClassIII = workloads.ClassIII
)

// STEM configuration and analysis.
type (
	// Config parameterizes a STEM cache (counter width k, spatial shift n,
	// signature width m, selector size; paper Table 3 defaults).
	Config = core.Config
	// OverheadReport is the paper's Table 3 storage analysis.
	OverheadReport = core.OverheadReport
)

// Timing and metrics.
type (
	// Timing holds the latency parameters of the paper's §5.1.
	Timing = mem.Timing
	// Account folds access outcomes into MPKI/AMAT/CPI.
	Account = mem.Account
	// Table is a labeled numeric matrix used by the experiment reports.
	Table = stats.Table
	// Hierarchy drives CPU-level streams through the Table 1 L1I/L1D and
	// bus into any LLC scheme, measuring AMAT/CPI directly.
	Hierarchy = mem.Hierarchy
	// HierarchyConfig parameterizes the L1s and the bus.
	HierarchyConfig = mem.HierarchyConfig
	// CPULevel expands an LLC-level generator into a CPU-level byte stream.
	CPULevel = trace.CPULevel
)

// Experiment harness types.
type (
	// RunConfig controls one simulation run (geometry, warmup, timing).
	RunConfig = experiments.RunConfig
	// RunResult summarizes one (workload, scheme) simulation.
	RunResult = experiments.RunResult
	// Comparison is the full Figure 7/8/9 + Table 2 evaluation matrix.
	Comparison = experiments.Comparison
	// SweepConfig parameterizes a Figure 3/10 associativity sweep.
	SweepConfig = experiments.SweepConfig
	// Fig1Config parameterizes the Figure 1 demand characterization.
	Fig1Config = experiments.Fig1Config
	// Fig1Result carries Figure 1's per-period demand distributions.
	Fig1Result = experiments.Fig1Result
	// Fig2Row is one Figure 2 example's measured and analytical rates.
	Fig2Row = experiments.Fig2Row
)

// Replacement-policy kernel, exposed so custom caches can be assembled (see
// examples/custompolicy).
type (
	// Policy ranks the ways of one cache set for replacement.
	Policy = policy.Policy
	// PolicyKind names a replacement policy (LRU, BIP, ...).
	PolicyKind = policy.Kind
)

// Policy kinds.
const (
	LRU    = policy.LRU
	BIP    = policy.BIP
	NRU    = policy.NRU
	Random = policy.Random
)

// PaperGeometry is the evaluation's standard LLC: 2MB, 16-way, 64-byte
// lines (2048 sets), as in the paper's Table 1.
var PaperGeometry = experiments.PaperGeometry

// Schemes lists the six scheme names accepted by NewScheme, in the paper's
// presentation order.
func Schemes() []string { return append([]string(nil), experiments.SchemeNames...) }

// ExtensionSchemes lists additional schemes NewScheme accepts beyond the
// paper's evaluation: the RRIP family (SRRIP, DRRIP — ISCA 2010), included
// as the stronger temporal baseline for the extension experiment.
func ExtensionSchemes() []string {
	return append([]string(nil), experiments.ExtensionSchemeNames...)
}

// New constructs a STEM cache over the given geometry. Zero-value Config
// fields take the paper's Table 3 defaults.
func New(geom Geometry, cfg Config) Simulator { return core.New(geom, cfg) }

// NewScheme constructs any of the six evaluated schemes by name ("LRU",
// "DIP", "PELIFO", "VWAY", "SBC", "STEM").
func NewScheme(name string, geom Geometry, seed uint64) (Simulator, error) {
	return experiments.NewScheme(name, geom, seed)
}

// NewCustomCache builds a conventional set-associative cache whose per-set
// replacement policy is supplied by factory — the extension point for
// experimenting with new policies against the paper's workloads.
func NewCustomCache(name string, geom Geometry, seed uint64, factory func(set, ways int, rng *RNG) Policy) Simulator {
	return basecache.New(name, geom, seed, basecache.PolicyFactory(factory))
}

// NewPolicy constructs a built-in replacement policy over ways ways.
func NewPolicy(kind PolicyKind, ways int, rng *RNG) Policy {
	return policy.New(kind, ways, rng)
}

// NewGenerator instantiates a workload over a geometry.
func NewGenerator(w Workload, geom Geometry, seed uint64) Generator {
	return trace.NewGen(w, geom, seed)
}

// Benchmarks returns the 15-benchmark analog suite in the paper's order.
func Benchmarks() []Benchmark { return workloads.Suite() }

// BenchmarkByName returns one analog by its SPEC name.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// MustBenchmark is BenchmarkByName, panicking on unknown names; it is meant
// for examples and tests with static names.
func MustBenchmark(name string) Benchmark {
	b, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Figure2Workload builds the paper's deterministic two-set Figure 2
// workload (examples 1-3).
func Figure2Workload(example int) Generator { return trace.Figure2(example) }

// Figure2Geometry is the toy LLC of Figure 2: two sets, four ways.
var Figure2Geometry = trace.Figure2Geometry

// DefaultTiming returns the paper's latency configuration (§5.1/Table 1).
func DefaultTiming() Timing { return mem.DefaultTiming() }

// NewAccount builds an AMAT/CPI accounting sink over the given timing.
func NewAccount(t Timing) *Account { return mem.NewAccount(t) }

// DemandProfiler is the §3.1 per-set capacity-demand profiler.
type DemandProfiler = profile.Demand

// PeriodDist is one sampling period's distribution of set-level demands.
type PeriodDist = profile.PeriodDist

// NewDemandProfiler builds the §3.1 per-set capacity-demand profiler;
// period is accesses per sampling period, maxWays the associativity horizon
// (the paper uses 50 000 and 32).
func NewDemandProfiler(geom Geometry, period, maxWays int) *DemandProfiler {
	return profile.NewDemand(geom, period, maxWays)
}

// Run drives a simulator over a generator with warmup and measurement.
func Run(s Simulator, gen Generator, cfg RunConfig) RunResult {
	return experiments.Run(s, gen, cfg)
}

// RunWorkload builds the named scheme plus the workload generator and runs
// them under cfg.
func RunWorkload(w Workload, scheme string, cfg RunConfig) (RunResult, error) {
	return experiments.RunWorkload(w, scheme, cfg)
}

// Figure1 reproduces the paper's Figure 1 characterization for one analog.
func Figure1(cfg Fig1Config) (Fig1Result, error) { return experiments.Figure1(cfg) }

// Figure1Table renders Figure 1 results as a text table.
func Figure1Table(results ...Fig1Result) *Table { return experiments.Fig1Table(results...) }

// Figure2 replays the paper's Figure 2 examples on the real scheme
// implementations and returns measured vs analytical miss rates.
func Figure2(seed uint64) []Fig2Row { return experiments.Figure2(seed) }

// Sweep reproduces one panel of Figure 3 (baselines) or Figure 10 (with
// STEM): MPKI vs associativity.
func Sweep(cfg SweepConfig) (*Table, error) { return experiments.Sweep(cfg) }

// MainComparison runs the full 15-benchmark × 6-scheme evaluation and
// assembles Figures 7-9 plus Table 2.
func MainComparison(cfg RunConfig) (*Comparison, error) {
	return experiments.MainComparison(cfg)
}

// Table3 computes the paper's hardware storage-overhead analysis.
func Table3() OverheadReport { return experiments.Table3() }

// Overhead computes the storage analysis for an arbitrary configuration.
func Overhead(geom Geometry, cfg Config, addressBits int) OverheadReport {
	return core.Overhead(geom, cfg, addressBits)
}

// NewHierarchy wraps an LLC with the paper's Table 1 L1 caches and bus.
func NewHierarchy(l2 Simulator, cfg HierarchyConfig) *Hierarchy {
	return mem.NewHierarchy(l2, cfg)
}

// NewCPULevel expands an LLC-level generator into a CPU-level byte-address
// stream (repeats accesses per block) for use with NewHierarchy.
func NewCPULevel(gen Generator, lineSize, repeats int) *CPULevel {
	return trace.NewCPULevel(gen, lineSize, repeats)
}

// OPTMisses runs Belady's optimal replacement (an offline oracle) over a
// recorded block trace and returns its statistics — the lower bound no
// per-set policy can beat (spatial schemes can, by sharing capacity across
// sets; that gap is the paper's spatial headroom).
func OPTMisses(geom Geometry, blocks []uint64) Stats { return opt.Simulate(geom, blocks) }

// AblationVariant is one variant of the STEM design with an individual
// mechanism disabled or a parameter swept (extends the paper's §5.3).
type AblationVariant = experiments.AblationVariant

// ComponentVariants isolates STEM's mechanisms (full, spatial-only,
// temporal-only, SBC-style unconstrained receive).
func ComponentVariants() []AblationVariant { return experiments.ComponentVariants() }

// ParameterVariants sweeps one Table 3 hardware parameter ("k", "n", "m" or
// "heap").
func ParameterVariants(param string) ([]AblationVariant, error) {
	return experiments.ParameterVariants(param)
}

// Ablate runs STEM variants over the named analogs, returning MPKI
// normalized to LRU.
func Ablate(variants []AblationVariant, benchNames []string, run RunConfig) (*Table, error) {
	return experiments.Ablate(variants, benchNames, run)
}

// ExtensionComparison runs the suite through DIP, SRRIP, DRRIP and STEM —
// the "does set-level management still pay against the next temporal
// generation?" experiment the paper leaves open.
func ExtensionComparison(run RunConfig) (*Table, error) {
	return experiments.ExtensionComparison(run)
}

// ReplicationResult summarizes one scheme's normalized-MPKI geomean across
// independent seeds.
type ReplicationResult = experiments.ReplicationResult

// Replicate repeats the main comparison across seeds — the robustness check
// that the headline conclusion does not depend on the seed choice.
func Replicate(run RunConfig, seeds []uint64) ([]ReplicationResult, error) {
	return experiments.Replicate(run, seeds)
}

// ReplicationTable renders a replication study as min/median/max rows.
func ReplicationTable(results []ReplicationResult) *Table {
	return experiments.ReplicationTable(results)
}

// Trace file I/O (see internal/tracefile for the formats): record synthetic
// workloads or replay external traces.
type (
	// TraceWriter emits the native binary trace format.
	TraceWriter = tracefile.Writer
	// TraceReader iterates a native binary trace.
	TraceReader = tracefile.Reader
	// TraceHeader carries trace-wide metadata.
	TraceHeader = tracefile.Header
)

// CreateTrace opens a native trace file for writing (gzip when the name
// ends in ".gz").
func CreateTrace(path string, h TraceHeader) (*TraceWriter, error) {
	return tracefile.Create(path, h)
}

// OpenTrace opens a native trace file (transparently gunzipping).
func OpenTrace(path string) (*TraceReader, error) { return tracefile.Open(path) }

// RecordTrace captures n references from a generator into w.
func RecordTrace(w *TraceWriter, gen Generator, n int) error {
	return tracefile.Record(w, gen, n)
}

// ParseDin reads a Dinero-style text trace ("label hex-addr" lines).
func ParseDin(r io.Reader, lineSize int) ([]Ref, error) {
	return tracefile.ParseDin(r, lineSize)
}

// Observability layer (see internal/obs and the "Observability" section of
// README.md): a metrics registry servable over HTTP, a structured event
// trace for the STEM/SBC coupling mechanisms, and periodic run snapshots.
type (
	// Observer consumes mechanism events (couple, decouple, spill, receive,
	// policy swap, shadow hit, class change) emitted by STEM and SBC.
	Observer = obs.Observer
	// ObserverFunc adapts a plain function to the Observer interface.
	ObserverFunc = obs.ObserverFunc
	// Event is one structured trace record (JSONL on disk).
	Event = obs.Event
	// EventType names a mechanism event.
	EventType = obs.EventType
	// Snapshot is one periodic observation of a running simulation; the
	// final snapshot's Stats equal the run's sim.Stats exactly.
	Snapshot = obs.Snapshot
	// SchemeState is a live census of association roles and per-set
	// policies.
	SchemeState = obs.SchemeState
	// ObsOptions wires observability into RunConfig.Obs.
	ObsOptions = obs.Options
	// Registry is the typed metrics registry (counters, gauges,
	// log2-bucketed histograms); it implements http.Handler.
	Registry = obs.Registry
	// JSONLTracer streams events as JSON lines.
	JSONLTracer = obs.JSONLTracer
	// MetricsServer is a live HTTP endpoint for a Registry.
	MetricsServer = obs.Server
)

// Mechanism event types.
const (
	EvShadowHit   = obs.EvShadowHit
	EvPolicySwap  = obs.EvPolicySwap
	EvClassChange = obs.EvClassChange
	EvCouple      = obs.EvCouple
	EvDecouple    = obs.EvDecouple
	EvSpill       = obs.EvSpill
	EvReceive     = obs.EvReceive
	EvSnapshot    = obs.EvSnapshot
)

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewJSONLTracer wraps w in a buffered JSONL event sink; Close flushes it.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// ReadEvents parses a JSONL event stream back into memory.
func ReadEvents(r io.Reader) ([]Event, error) { return obs.ReadEvents(r) }

// ServeMetrics exposes reg as JSON on addr (and /debug/pprof when withPprof
// is set); it returns the running server, whose Close stops it.
func ServeMetrics(addr string, reg *Registry, withPprof bool) (*MetricsServer, error) {
	return obs.Serve(addr, reg, withPprof)
}

// In-process cache library (see internal/stemcache): the paper's mechanism
// lifted out of the simulator into a concurrent, sharded, generic key-value
// cache. Each shard is lock-striped; each set inside a shard carries the
// SCDM (shadow signatures + SC_S/SC_T), duels LRU against BIP individually,
// and spills victims to a coupled giver set under the paper's receiving
// constraints. See the Example functions and the "stemcache" section of
// README.md.
type (
	// Cache is the concurrent, sharded, STEM-managed in-memory KV cache.
	Cache[K comparable, V any] = stemcache.Cache[K, V]
	// CacheConfig parameterizes a Cache (capacity, shards, ways, TTL, the
	// paper's Table 3 engine parameters, and observability sinks). The zero
	// value is usable.
	CacheConfig = stemcache.Config
	// CacheStats aggregates a Cache's counters; comparable with ==.
	CacheStats = stemcache.Stats
)

// NewCache builds a STEM-managed key-value cache for any comparable key
// type. String and integer keys hash deterministically from cfg.Seed; other
// key types use hash/maphash (deterministic within one process). It never
// panics: an invalid cfg (see CacheConfig.Validate) is reported as an error.
func NewCache[K comparable, V any](cfg CacheConfig) (*Cache[K, V], error) {
	return stemcache.New[K, V](cfg)
}

// NewCacheWithHasher builds a Cache whose 64-bit key hash is supplied by
// the caller; shard, set and shadow-signature selection all consume its
// bits, so it must spread keys uniformly. A nil hasher or an invalid cfg is
// reported as an error, never a panic.
func NewCacheWithHasher[K comparable, V any](cfg CacheConfig, hasher func(K) uint64) (*Cache[K, V], error) {
	return stemcache.NewWithHasher[K, V](cfg, hasher)
}

// NewShardedLRUCache builds the baseline the stemcache benchmarks compare
// against: the same sharded structure with both STEM mechanisms disabled —
// a plain lock-striped set-associative LRU cache. An invalid cfg is
// reported as an error, never a panic.
func NewShardedLRUCache[K comparable, V any](cfg CacheConfig) (*Cache[K, V], error) {
	return stemcache.NewShardedLRU[K, V](cfg)
}

// Read-through loading (see the "Read-through loading" section of README.md
// and DESIGN.md §13): Cache.GetOrLoad turns the passive KV cache into a
// read-through cache — on a miss it invokes a Loader exactly once per key no
// matter how many goroutines ask (singleflight), caches origin "not found"
// answers briefly (negative caching), spreads expirations with TTL jitter,
// and past the freshness deadline serves the stale value immediately while
// one background worker revalidates (stale-while-revalidate).
type (
	// Loader fetches the authoritative value for a key from the origin.
	// Returning ErrNotFound caches the absence (negative caching).
	Loader[K comparable, V any] = stemcache.Loader[K, V]
	// LoadState classifies what LookupLoad found for a key: LoadMiss,
	// LoadHit, LoadStale or LoadNegative.
	LoadState = stemcache.LoadState
)

// LoadState values.
const (
	LoadMiss     = stemcache.LoadMiss
	LoadHit      = stemcache.LoadHit
	LoadStale    = stemcache.LoadStale
	LoadNegative = stemcache.LoadNegative
)

// ErrNotFound is the sentinel a Loader returns for "the origin says this
// key does not exist"; GetOrLoad caches the absence for
// CacheConfig.NegativeTTL and returns ErrNotFound to every caller until it
// expires.
var ErrNotFound = stemcache.ErrNotFound

// ChainLoaders composes loaders into one fallback sequence: each is tried
// in order, any failure falls through to the next, and when every loader
// fails the last error is returned — the classic
// fast-tier-then-authoritative-origin lookup path as a single Loader. A
// cancelled context stops the fallback walk.
func ChainLoaders[K comparable, V any](loaders ...Loader[K, V]) Loader[K, V] {
	return stemcache.Chain(loaders...)
}

#!/bin/sh
# Runs the hot-path allocation benchmarks (wire GET/MGET encode+decode and
# the stemcache shard read), writes the parsed results to BENCH_hotpath.json,
# and fails if any gated benchmark reports a nonzero allocs/op. This is the
# dynamic half of the zero-allocation contract; the static half is the
# hotpath analyzer in internal/analysis (run via stemlint).
#
# Usage: scripts/bench_hotpath.sh [output.json]
set -eu

out="${1:-BENCH_hotpath.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench AllocsHotPath -benchmem -benchtime 100000x \
  ./internal/wire ./internal/stemcache | tee "$raw"

python3 - "$raw" "$out" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
line_re = re.compile(
    r"^(BenchmarkAllocsHotPath\S+)\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op"
)
results = []
for line in open(raw):
    m = line_re.match(line)
    if m:
        results.append({
            "name": m.group(1),
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        })

doc = {"benchmark": "AllocsHotPath", "results": results}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

# The gate: every hot-path benchmark must be allocation-free, and the run
# must actually have covered the wire and stemcache suites.
assert results, "no AllocsHotPath benchmark lines parsed"
names = {r["name"] for r in results}
assert any("Wire" in n for n in names), f"wire suite missing: {names}"
assert any("StemCache" in n for n in names), f"stemcache suite missing: {names}"
dirty = [r for r in results if r["allocs_per_op"] != 0]
assert not dirty, "nonzero allocs/op: " + ", ".join(
    f'{r["name"]}={r["allocs_per_op"]}' for r in dirty
)
print(f"{len(results)} hot-path benchmarks, all 0 allocs/op -> {out}")
EOF

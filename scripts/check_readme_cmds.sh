#!/bin/sh
# check_readme_cmds.sh — README/cmd cross-check, run by CI.
#
# Two directions:
#   1. every binary under cmd/ is mentioned in README.md (no undocumented
#      tools);
#   2. every "cmd/<name>" or "go run ./cmd/<name>" reference in README.md
#      names a directory that actually exists (no docs pointing at removed
#      tools).
#
# Exits nonzero with a per-name report on any mismatch.
set -eu
cd "$(dirname "$0")/.."

status=0

# Direction 1: cmd/* -> README.
for dir in cmd/*/; do
    name=$(basename "$dir")
    if ! grep -q "$name" README.md; then
        echo "cmd/$name exists but README.md never mentions it" >&2
        status=1
    fi
done

# Direction 2: README -> cmd/*. Pull every cmd/<name> token out of the
# README (covers `go run ./cmd/x`, layout entries like `cmd/x`, and prose).
for name in $(grep -o 'cmd/[a-z0-9_-]*' README.md | sed 's|cmd/||' | sort -u); do
    [ -n "$name" ] || continue
    if [ ! -d "cmd/$name" ]; then
        echo "README.md references cmd/$name, which does not exist" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "README.md and cmd/ agree ($(ls -d cmd/*/ | wc -l | tr -d ' ') binaries)"
fi
exit $status

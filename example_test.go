package stem_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	stem "repro"
)

// Build the paper's STEM LLC and run it over a deterministic workload.
func ExampleNew() {
	geom := stem.Geometry{Sets: 2, Ways: 4, LineSize: 64}
	cache := stem.New(geom, stem.Config{Seed: 7})
	gen := stem.Figure2Workload(1) // the paper's Figure 2 example #1
	for i := 0; i < 1200; i++ {
		r := gen.Next()
		cache.Access(stem.Access{Block: r.Block, Write: r.Write})
	}
	cache.ResetStats()
	for i := 0; i < 1200; i++ {
		r := gen.Next()
		cache.Access(stem.Access{Block: r.Block, Write: r.Write})
	}
	fmt.Printf("steady-state miss rate: %.3f\n", cache.Stats().MissRate())
	// Output:
	// steady-state miss rate: 0.000
}

// Construct any evaluated scheme by name.
func ExampleNewScheme() {
	geom := stem.Geometry{Sets: 16, Ways: 4, LineSize: 64}
	cache, err := stem.NewScheme("DIP", geom, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println(cache.Name(), cache.Geometry().CapacityBytes(), "bytes")
	// Output:
	// DIP 4096 bytes
}

// The Table 3 storage analysis.
func ExampleTable3() {
	r := stem.Table3()
	fmt.Printf("STEM storage overhead: %.2f%% (paper: 3.1%%)\n", 100*r.OverheadFraction)
	// Output:
	// STEM storage overhead: 3.16% (paper: 3.1%)
}

// Describe a workload by its set-level structure and measure it.
func ExampleRunWorkload() {
	w := stem.Workload{
		Name: "demo", APKI: 20, WriteFrac: 0.25,
		Groups: []stem.Group{
			{Name: "givers", Frac: 0.5, Weight: 0.5, Pat: stem.Pattern{Kind: stem.Scan}},
			{Name: "takers", Frac: 0.5, Weight: 1.0, Pat: stem.Pattern{Kind: stem.Cyclic, N: 12}},
		},
	}
	cfg := stem.RunConfig{
		Geom:    stem.Geometry{Sets: 64, Ways: 8, LineSize: 64},
		Warmup:  50_000,
		Measure: 100_000,
	}
	lru, _ := stem.RunWorkload(w, "LRU", cfg)
	st, _ := stem.RunWorkload(w, "STEM", cfg)
	fmt.Printf("STEM reduces the miss rate: %v\n", st.MissRate < lru.MissRate)
	// Output:
	// STEM reduces the miss rate: true
}

// Quickstart for the key-value cache layer: a cache-aside Get/Set loop.
func ExampleNewCache() {
	c, err := stem.NewCache[string, string](stem.CacheConfig{Capacity: 1024, Seed: 1})
	if err != nil {
		panic(err) // only an invalid CacheConfig errors; this one is static
	}
	defer c.Close()

	if _, ok := c.Get("user:42"); !ok {
		// Miss: fetch from the backing store, then cache it.
		c.Set("user:42", "Ada Lovelace")
	}
	name, ok := c.Get("user:42")
	fmt.Println(name, ok)
	// Output:
	// Ada Lovelace true
}

// Shard count and geometry are configurable: shards bound lock contention
// (and the spatial-coupling domain), ways set the per-set eviction pool.
func ExampleNewCache_shards() {
	c, _ := stem.NewCache[int, int](stem.CacheConfig{
		Capacity: 10_000, // rounded up to shards × sets × ways
		Shards:   4,      // four independent mutexes
		Ways:     16,     // 16 entries share one demand monitor
		Seed:     7,
	})
	defer c.Close()
	fmt.Println(c.Shards(), c.Capacity())
	// Output:
	// 4 16384
}

// Reading CacheStats: drive a scan larger than the cache and watch the
// STEM engine's counters alongside the hit/miss totals.
func ExampleCache_stats() {
	c, _ := stem.NewCache[int, int](stem.CacheConfig{Capacity: 512, Shards: 1, Seed: 3})
	defer c.Close()
	for pass := 0; pass < 40; pass++ {
		for k := 0; k < 1024; k++ { // twice the capacity: LRU alone would thrash
			if _, ok := c.Get(k); !ok {
				c.Set(k, k)
			}
		}
	}
	st := c.Stats()
	fmt.Printf("gets=%d  hitrate>0.2=%v  shadowHits>0=%v  policySwaps>0=%v\n",
		st.Gets, st.HitRate() > 0.2, st.ShadowHits > 0, st.PolicySwaps > 0)
	// Output:
	// gets=40960  hitrate>0.2=true  shadowHits>0=true  policySwaps>0=true
}

// Profile a workload's set-level capacity demands (paper §3.1).
func ExampleNewDemandProfiler() {
	geom := stem.Geometry{Sets: 4, Ways: 16, LineSize: 64}
	p := stem.NewDemandProfiler(geom, 4000, 32)
	// Set 0 cycles 8 blocks (demand 8); the rest stream (demand 0).
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			p.Feed(geom.BlockFor(uint64(i/2%8)+1, 0))
		} else {
			p.Feed(geom.BlockFor(uint64(i)+1, 1+i%3))
		}
	}
	p.Flush()
	last := p.Periods()[0]
	fmt.Printf("sets with demand 7-8: %d, with demand 0: %d\n",
		last.Counts[4], last.Counts[0])
	// Output:
	// sets with demand 7-8: 1, with demand 0: 3
}

// Read-through loading: on a miss, GetOrLoad consults the origin exactly
// once per key however many goroutines ask concurrently (singleflight), and
// every caller shares the answer.
func ExampleCache_GetOrLoad() {
	c, _ := stem.NewCache[string, string](stem.CacheConfig{Capacity: 1024, Seed: 1})
	defer c.Close()

	var originCalls atomic.Int32
	origin := func(ctx context.Context, key string) (string, error) {
		originCalls.Add(1)
		return "value-for-" + key, nil
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.GetOrLoad(context.Background(), "user:42", origin); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()

	v, _ := c.GetOrLoad(context.Background(), "user:42", origin)
	fmt.Printf("%s after %d origin call(s)\n", v, originCalls.Load())
	// Output:
	// value-for-user:42 after 1 origin call(s)
}

// Loader chains: try the fast tier first, fall back to the authoritative
// origin, and let GetOrLoad cache whatever tier answered. A loader
// returning stem.ErrNotFound caches the absence (negative caching).
func ExampleChainLoaders() {
	c, _ := stem.NewCache[string, string](stem.CacheConfig{
		Capacity:    1024,
		Seed:        1,
		NegativeTTL: time.Minute,
	})
	defer c.Close()

	fastTier := func(ctx context.Context, key string) (string, error) {
		return "", stem.ErrNotFound // e.g. a memcached tier that missed
	}
	database := func(ctx context.Context, key string) (string, error) {
		if key == "user:42" {
			return "Ada Lovelace", nil
		}
		return "", stem.ErrNotFound
	}
	loader := stem.ChainLoaders(fastTier, database)

	v, err := c.GetOrLoad(context.Background(), "user:42", loader)
	fmt.Println(v, err)
	_, err = c.GetOrLoad(context.Background(), "user:404", loader)
	fmt.Println(err)
	// Output:
	// Ada Lovelace <nil>
	// stemcache: key not found
}

// Stale-while-revalidate: past its freshness TTL a key is served from the
// stale value immediately — the origin's latency leaves the read path —
// while one background worker revalidates.
func ExampleCache_GetOrLoad_staleWhileRevalidate() {
	c, _ := stem.NewCache[string, string](stem.CacheConfig{
		Capacity: 1024,
		Seed:     1,
		LoadTTL:  10 * time.Millisecond, // fresh for 10ms...
		StaleTTL: time.Minute,           // ...then stale-but-servable
	})
	defer c.Close()

	var version atomic.Int32
	origin := func(ctx context.Context, key string) (string, error) {
		return fmt.Sprintf("v%d", version.Add(1)), nil
	}

	v, _ := c.GetOrLoad(context.Background(), "feed", origin)
	fmt.Println("cold load:", v)

	time.Sleep(30 * time.Millisecond) // cross the freshness deadline
	v, _ = c.GetOrLoad(context.Background(), "feed", origin)
	fmt.Println("stale read:", v) // served instantly; refresh runs behind

	for { // the background revalidation lands shortly after
		if v, _ = c.GetOrLoad(context.Background(), "feed", origin); v != "v1" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("after revalidate:", v)
	// Output:
	// cold load: v1
	// stale read: v1
	// after revalidate: v2
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestRunServesCluster boots a tiny supervised cluster, waits for the addr
// file, drives it through the routing client, and shuts it down cleanly.
func TestRunServesCluster(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addrs")
	stop := make(chan struct{})
	errC := make(chan error, 1)
	go func() {
		errC <- run(runConfig{
			nodes: 3, capacity: 512, seed: 21,
			epoch: 10 * time.Millisecond, addrFile: addrFile,
		}, stop)
	}()

	var addrs []string
	deadline := time.Now().Add(5 * time.Second) //lint:allow(determinism) test-only startup timeout
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			addrs = strings.Split(strings.TrimSpace(string(b)), ",")
			break
		}
		if time.Now().After(deadline) { //lint:allow(determinism) test-only startup timeout
			t.Fatal("addr file never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(addrs) != 3 {
		t.Fatalf("addr file lists %d nodes, want 3", len(addrs))
	}

	cl, err := cluster.NewClient(cluster.Config{Addrs: addrs, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("smoke-%d", i)
		if err := cl.Set(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("smoke-%d", i)
		v, found, err := cl.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(v) != k {
			t.Fatalf("key %q round trip = (%q, %v)", k, v, found)
		}
	}

	close(stop)
	if err := <-errC; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunMembershipOrchestration boots the supervisor with the membership
// tier plus a scripted kill and join, lets the failure detector fire, and
// verifies the whole lifecycle shuts down cleanly — the orchestration-path
// smoke for -replication/-kill-after/-join-after.
func TestRunMembershipOrchestration(t *testing.T) {
	if testing.Short() {
		t.Skip("orchestration smoke runs a live supervisor")
	}
	addrFile := filepath.Join(t.TempDir(), "addrs")
	stop := make(chan struct{})
	errC := make(chan error, 1)
	go func() {
		errC <- run(runConfig{
			nodes: 3, capacity: 512, seed: 21,
			epoch:       time.Hour, // park the rebalancer; membership drives this run
			addrFile:    addrFile,
			replication: 2, heartbeat: 10 * time.Millisecond, suspect: 2,
			killAfter: 100 * time.Millisecond, killNode: 1,
			joinAfter: 200 * time.Millisecond,
		}, stop)
	}()

	deadline := time.Now().Add(5 * time.Second) //lint:allow(determinism) test-only startup timeout
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			break
		}
		if time.Now().After(deadline) { //lint:allow(determinism) test-only startup timeout
			t.Fatal("addr file never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Give the scripted kill, the detector's failover, and the scripted
	// join time to run, then ask for a clean shutdown.
	time.Sleep(600 * time.Millisecond)
	close(stop)
	if err := <-errC; err != nil {
		t.Fatalf("run with membership: %v", err)
	}
}

// Command stemcluster supervises an in-process STEM cluster: it starts N
// cache nodes (each a stemd-style server over its own STEM-managed cache),
// prints their addresses for clients like `stemload -cluster`, and runs the
// node-level giver/taker rebalancing loop — each epoch it polls every node's
// capacity-demand snapshot (the aggregate of its sets' SCDM monitors) and
// migrates a bounded number of ring slots from saturated nodes to
// under-utilized ones.
//
// Usage:
//
//	stemcluster -nodes 3 -capacity 8192 -seed 21
//	stemcluster -nodes 3 -addr-file /tmp/addrs -epoch 500ms -max-moves 2
//	stemcluster -nodes 3 -static              # consistent hashing only, no rebalancing
//	stemcluster -metrics :6060 -trace events.jsonl
//
// With -replication the membership tier comes up too: one agent per node
// (synchronous replica write fan-out plus read-repair), a manager holding
// the member table and giver-aware replica placement, and a heartbeat
// failure detector that promotes replicas when a node dies. -join-after
// and -kill-after/-kill-node script lifecycle events for experiments:
//
//	stemcluster -nodes 3 -replication 2 -heartbeat 250ms -suspect 3
//	stemcluster -nodes 3 -replication 2 -kill-after 10s -kill-node 1
//	stemcluster -nodes 3 -replication 2 -join-after 10s
//
// Drive it with the load generator, matching -seed (and -vnodes if set):
//
//	stemload -cluster "$(cat /tmp/addrs)" -seed 21 -dist hotspot-shift
//
// stemcluster runs until SIGINT/SIGTERM, then closes every node.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/stemcache"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 3, "cluster node count")
		capacity = flag.Int("capacity", 1<<13, "per-node cache capacity in entries")
		shards   = flag.Int("shards", 0, "per-node shard count (0 = default)")
		ways     = flag.Int("ways", 0, "per-node set associativity (0 = default)")
		vnodes   = flag.Int("vnodes", 0, "ring slots per node (0 = the cluster default)")
		seed     = flag.Uint64("seed", 0x57E4, "cluster seed: ring placement and per-node cache seeds")

		epoch     = flag.Duration("epoch", time.Second, "rebalancing epoch interval")
		maxMoves  = flag.Int("max-moves", 0, "slot migrations allowed per epoch (0 = default 2)")
		takerFrac = flag.Float64("taker-frac", 0, "demand score at or above which a node is a taker (0 = default)")
		giverFrac = flag.Float64("giver-frac", 0, "demand score at or below which a node is a giver (0 = default)")
		static    = flag.Bool("static", false, "serve the static consistent-hash ring: no rebalancing loop")

		replication = flag.Int("replication", 0, "copies per slot including the owner; 0 disables the membership tier")
		heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "with -replication: failure-detector heartbeat interval")
		suspect     = flag.Int("suspect", 0, "with -replication: consecutive missed heartbeats before a node is declared dead (0 = default)")
		joinAfter   = flag.Duration("join-after", 0, "with -replication: start and join one more node after this delay (0 = never)")
		killAfter   = flag.Duration("kill-after", 0, "with -replication: close -kill-node after this delay, leaving failover to the detector (0 = never)")
		killNode    = flag.Int("kill-node", 1, "with -kill-after: the node to kill")

		addrFile    = flag.String("addr-file", "", "write the comma-separated node addresses to this file")
		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		tracePath   = flag.String("trace", "", `write node-demand and migration events as JSONL to this file ("-" for stdout)`)
	)
	flag.Parse()

	if err := run(runConfig{
		nodes: *nodes, capacity: *capacity, shards: *shards, ways: *ways,
		vnodes: *vnodes, seed: *seed,
		epoch: *epoch, maxMoves: *maxMoves, takerFrac: *takerFrac, giverFrac: *giverFrac,
		static: *static, addrFile: *addrFile,
		replication: *replication, heartbeat: *heartbeat, suspect: *suspect,
		joinAfter: *joinAfter, killAfter: *killAfter, killNode: *killNode,
		metricsAddr: *metricsAddr, tracePath: *tracePath,
	}, nil); err != nil {
		fmt.Fprintln(os.Stderr, "stemcluster:", err)
		os.Exit(1)
	}
}

// runConfig is main's flag set as a value, so run is testable.
type runConfig struct {
	nodes    int
	capacity int
	shards   int
	ways     int
	vnodes   int
	seed     uint64

	epoch     time.Duration
	maxMoves  int
	takerFrac float64
	giverFrac float64
	static    bool

	replication int
	heartbeat   time.Duration
	suspect     int
	joinAfter   time.Duration
	killAfter   time.Duration
	killNode    int

	addrFile    string
	metricsAddr string
	tracePath   string
}

// run starts the nodes and the rebalancing loop, then blocks until a
// termination signal (or stop closing, for tests).
func run(cfg runConfig, stop <-chan struct{}) error {
	if cfg.nodes <= 0 {
		return fmt.Errorf("need a positive -nodes")
	}
	if cfg.epoch <= 0 {
		return fmt.Errorf("need a positive -epoch")
	}
	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   cfg.metricsAddr,
		TracePath:     cfg.tracePath,
		SnapshotEvery: -1,
	})
	if err != nil {
		return err
	}
	defer tool.Close()
	var reg *obs.Registry
	var tracer obs.Observer
	if opts := tool.Options(); opts != nil {
		reg = opts.Registry
		tracer = opts.Tracer
	}

	nodes := make([]*cluster.Node, cfg.nodes)
	addrs := make([]string, cfg.nodes)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := range nodes {
		node, err := cluster.StartNode(i, cluster.NodeConfig{
			Cache: stemcache.Config{
				Capacity: cfg.capacity,
				Shards:   cfg.shards,
				Ways:     cfg.ways,
				Seed:     cluster.NodeSeed(cfg.seed, i),
			},
		})
		if err != nil {
			return fmt.Errorf("starting node %d: %w", i, err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	cl, err := cluster.NewClient(cluster.Config{
		Addrs:   addrs,
		VNodes:  cfg.vnodes,
		Seed:    cfg.seed,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	joined := strings.Join(addrs, ",")
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(joined+"\n"), 0o644); err != nil {
			return err
		}
	}
	mode := "rebalancing every " + cfg.epoch.String()
	if cfg.static {
		mode = "static ring"
	}
	if cfg.replication > 0 {
		mode += fmt.Sprintf(", membership rf=%d heartbeat=%s", cfg.replication, cfg.heartbeat)
	}
	fmt.Fprintf(os.Stderr, "stemcluster: %d nodes (%s), %d entries each, %s\n",
		cfg.nodes, joined, nodes[0].Cache().Capacity(), mode)
	if maddr := tool.MetricsAddr(); maddr != "" {
		fmt.Fprintf(os.Stderr, "stemcluster: metrics at http://%s/metrics\n", maddr)
	}

	// The membership tier: one agent per node (replica fan-out and
	// read-repair hooks on its server), a manager holding the member table
	// and replica placement, and the heartbeat failure detector.
	lister := func(n int) ([]string, error) { return nodes[n].Keys(), nil }
	var mgr *membership.Manager
	var agents []*membership.Agent
	if cfg.replication > 0 {
		if cfg.heartbeat <= 0 {
			return fmt.Errorf("need a positive -heartbeat with -replication")
		}
		if cfg.killAfter > 0 && (cfg.killNode < 0 || cfg.killNode >= cfg.nodes) {
			return fmt.Errorf("-kill-node %d out of range [0, %d)", cfg.killNode, cfg.nodes)
		}
		for i, node := range nodes {
			agents = append(agents, membership.NewAgent(i, cl.Ring(), node.Server(), cl.Template()))
		}
		defer func() {
			for _, a := range agents {
				a.Close()
			}
		}()
		mgr, err = membership.New(cl, lister, addrs, membership.Config{
			ReplicationFactor: cfg.replication,
			SuspectAfter:      cfg.suspect,
			Metrics:           reg,
			Observer:          tracer,
		})
		if err != nil {
			return err
		}
		if _, err := mgr.Bootstrap(); err != nil {
			return err
		}
	}

	// The supervisor loop: one goroutine owns every ring mutation —
	// rebalancing epochs, membership heartbeats (failover), and the
	// scripted join/kill events — so none of them race another.
	done := make(chan struct{})
	loopDone := make(chan struct{})
	var rb *cluster.Rebalancer
	if !cfg.static {
		rb, err = cluster.NewRebalancer(cl, lister, cluster.RebalancerConfig{
			MaxMovesPerEpoch: cfg.maxMoves,
			TakerFrac:        cfg.takerFrac,
			GiverFrac:        cfg.giverFrac,
			Metrics:          reg,
			Observer:         tracer,
		})
		if err != nil {
			return err
		}
	}
	if rb == nil && mgr == nil {
		close(loopDone)
	} else {
		var epochC, beatC <-chan time.Time
		if rb != nil {
			ticker := time.NewTicker(cfg.epoch)
			defer ticker.Stop()
			epochC = ticker.C
		}
		var joinC, killC <-chan time.Time
		if mgr != nil {
			ticker := time.NewTicker(cfg.heartbeat)
			defer ticker.Stop()
			beatC = ticker.C
			if cfg.joinAfter > 0 {
				joinC = time.After(cfg.joinAfter)
			}
			if cfg.killAfter > 0 {
				killC = time.After(cfg.killAfter)
			}
		}
		go func() {
			defer close(loopDone)
			for {
				select {
				case <-done:
					return
				case <-epochC:
					report, err := rb.Epoch()
					if err != nil {
						fmt.Fprintf(os.Stderr, "stemcluster: epoch %d: %v\n", report.Epoch, err)
						continue
					}
					for _, mv := range report.Moves {
						fmt.Fprintf(os.Stderr, "stemcluster: epoch %d: slot %d node %d → %d (%d keys)\n",
							report.Epoch, mv.Slot, mv.From, mv.To, mv.Keys)
					}
				case <-beatC:
					for _, rep := range mgr.Tick() {
						fmt.Fprintf(os.Stderr, "stemcluster: view %d: node %d failed over, %d slots promoted, %d keys re-replicated\n",
							rep.Epoch, rep.Node, len(rep.Moves), rep.ReplicaKeys)
					}
				case <-joinC:
					joinC = nil
					id := len(nodes)
					node, err := cluster.StartNode(id, cluster.NodeConfig{
						Cache: stemcache.Config{
							Capacity: cfg.capacity,
							Shards:   cfg.shards,
							Ways:     cfg.ways,
							Seed:     cluster.NodeSeed(cfg.seed, id),
						},
					})
					if err != nil {
						fmt.Fprintf(os.Stderr, "stemcluster: join: %v\n", err)
						continue
					}
					nodes = append(nodes, node)
					agents = append(agents, membership.NewAgent(id, cl.Ring(), node.Server(), cl.Template()))
					rep, err := mgr.Join(node.Addr())
					if err != nil {
						fmt.Fprintf(os.Stderr, "stemcluster: join: %v\n", err)
						continue
					}
					fmt.Fprintf(os.Stderr, "stemcluster: view %d: node %d joined at %s, %d slots handed off\n",
						rep.Epoch, rep.Node, node.Addr(), len(rep.Moves))
				case <-killC:
					killC = nil
					if err := nodes[cfg.killNode].Close(); err != nil {
						fmt.Fprintf(os.Stderr, "stemcluster: kill node %d: %v\n", cfg.killNode, err)
						continue
					}
					fmt.Fprintf(os.Stderr, "stemcluster: killed node %d; awaiting failover\n", cfg.killNode)
				}
			}
		}()
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigC)
	select {
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "stemcluster: %v; shutting down\n", sig)
	case <-stop:
	}
	close(done)
	<-loopDone
	return nil
}

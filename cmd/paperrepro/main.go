// Command paperrepro regenerates every table and figure of the paper's
// evaluation in one run: Figure 1 (capacity-demand characterization),
// Figure 2 (synthetic examples), Figure 3 and Figure 10 (associativity
// sweeps), Table 2 (baseline MPKI), Figures 7-9 (the main normalized
// comparison) and Table 3 (hardware overhead) — plus the beyond-the-paper
// studies: the STEM mechanism/parameter ablations, the RRIP-family
// extension comparison, and the seed-robustness replication.
//
// Usage:
//
//	paperrepro             # full run (~10 min on one core)
//	paperrepro -quick      # scaled-down run (~2 min)
//	paperrepro -only fig7  # one experiment (fig1,fig2,fig3,fig7,fig8,fig9,
//	                       #   fig10,table2,table3,ablation,extension,replicate)
//	paperrepro -o report.txt -metrics :6060   # report to file, live metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	stem "repro"
	"repro/internal/obs"
)

// now is the tool's injectable wall clock (nanoseconds). All simulation
// results are seed-deterministic; the clock only times report sections, and
// tests swap it for a fake to pin the printed durations.
var now = func() int64 { return time.Now().UnixNano() } //lint:allow(determinism) tool boundary: wall-clock section timing only, never simulation state

// sectionTimer returns the report's section helper: it prints the banner
// for title and returns a closure that prints the elapsed wall time taken
// from clock when the section finishes.
func sectionTimer(out io.Writer, clock func() int64) func(title string) func() {
	return func(title string) func() {
		start := clock()
		fmt.Fprintf(out, "==== %s ====\n", title)
		return func() { fmt.Fprintf(out, "(%.1fs)\n\n", float64(clock()-start)/1e9) }
	}
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "scaled-down run for a fast end-to-end check")
		only    = flag.String("only", "", "run a single experiment (fig1,fig2,fig3,fig7,fig8,fig9,fig10,table2,table3,ablation,extension,replicate)")
		seed    = flag.Uint64("seed", 0x57E4, "run seed")
		csvDir  = flag.String("csvdir", "", "also write each table as CSV into this directory")
		outPath = flag.String("o", "", "write the report to this file instead of stdout")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
		tracePath   = flag.String("trace", "", "write mechanism events as JSONL to this file")
		snapEvery   = flag.Int("snapshot-every", 0, "accesses between run snapshots (0 = default, negative = off)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	// The experiment matrices run their (benchmark, scheme) cells in
	// parallel on one shared registry: counters aggregate across cells,
	// snapshot gauges show whichever cell published last.
	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   *metricsAddr,
		Pprof:         *pprofFlag,
		TracePath:     *tracePath,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fail(err)
	}
	defer tool.Close()
	if addr := tool.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "paperrepro: metrics at http://%s/metrics\n", addr)
	}

	writeCSV := func(name string, t *stem.Table) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fail(err)
		}
	}

	run := stem.RunConfig{Warmup: 1_000_000, Measure: 3_000_000, Seed: *seed}
	sweepRun := stem.RunConfig{Warmup: 300_000, Measure: 900_000, Seed: *seed}
	fig1Periods := 1000
	if *quick {
		run = stem.RunConfig{Warmup: 300_000, Measure: 900_000, Seed: *seed}
		sweepRun = stem.RunConfig{Warmup: 150_000, Measure: 450_000, Seed: *seed}
		fig1Periods = 100
	}
	run.Obs = tool.Options()
	sweepRun.Obs = tool.Options()

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	section := sectionTimer(out, now)

	if want("fig1") {
		done := section("Figure 1: set-level capacity demand distributions")
		omnet, err := stem.Figure1(stem.Fig1Config{Benchmark: "omnetpp", Periods: fig1Periods, Seed: *seed})
		if err != nil {
			fail(err)
		}
		ammp, err := stem.Figure1(stem.Fig1Config{Benchmark: "ammp", Periods: fig1Periods, Seed: *seed})
		if err != nil {
			fail(err)
		}
		tbl := stem.Figure1Table(omnet, ammp)
		fmt.Fprint(out, tbl.String())
		writeCSV("fig1", tbl)
		done()
	}

	if want("fig2") {
		done := section("Figure 2: synthetic two-set examples")
		fmt.Fprintln(out, "ex    LRU meas/paper   DIP meas/paper   SBC meas/paper   STEM meas")
		for _, r := range stem.Figure2(*seed) {
			fmt.Fprintf(out, "#%d    %.3f / %.3f    %.3f / %.3f    %.3f / %.3f    %.3f\n",
				r.Example, r.LRU, r.ExpLRU, r.DIP, r.ExpDIP, r.SBC, r.ExpSBC, r.STEM)
		}
		fmt.Fprintln(out, "(paper DIP column assumes oracle knowledge of the working sets;")
		fmt.Fprintln(out, " STEM on #2 is the paper's 'extensional example')")
		done()
	}

	if want("fig3") {
		done := section("Figure 3: MPKI vs associativity, baseline schemes")
		for _, b := range []string{"omnetpp", "ammp"} {
			tbl, err := stem.Sweep(stem.SweepConfig{
				Benchmark: b,
				Schemes:   []string{"LRU", "DIP", "PELIFO", "VWAY", "SBC"},
				Run:       sweepRun,
			})
			if err != nil {
				fail(err)
			}
			fmt.Fprint(out, tbl.String())
			writeCSV("fig3_"+b, tbl)
			fmt.Fprintln(out)
		}
		done()
	}

	var cmp *stem.Comparison
	if want("fig7") || want("fig8") || want("fig9") || want("table2") {
		done := section("Figures 7-9 + Table 2: the 15-benchmark comparison")
		var err error
		cmp, err = stem.MainComparison(run)
		if err != nil {
			fail(err)
		}
		if want("table2") {
			fmt.Fprint(out, cmp.Table2.String())
			writeCSV("table2", cmp.Table2)
			fmt.Fprintln(out)
		}
		if want("fig7") {
			fmt.Fprint(out, cmp.MPKI.String())
			writeCSV("fig7", cmp.MPKI)
			fmt.Fprintln(out)
		}
		if want("fig8") {
			fmt.Fprint(out, cmp.AMAT.String())
			writeCSV("fig8", cmp.AMAT)
			fmt.Fprintln(out)
		}
		if want("fig9") {
			fmt.Fprint(out, cmp.CPI.String())
			writeCSV("fig9", cmp.CPI)
			fmt.Fprintln(out)
		}
		if g, ok := cmp.MPKI.Get("Geomean", "STEM"); ok {
			fmt.Fprintf(out, "STEM geomean improvement over LRU: MPKI %.1f%% (paper: 21.4%%)",
				100*(1-g))
			if a, ok := cmp.AMAT.Get("Geomean", "STEM"); ok {
				fmt.Fprintf(out, ", AMAT %.1f%% (13.5%%)", 100*(1-a))
			}
			if c, ok := cmp.CPI.Get("Geomean", "STEM"); ok {
				fmt.Fprintf(out, ", CPI %.1f%% (6.3%%)", 100*(1-c))
			}
			fmt.Fprintln(out)
		}
		done()
	}

	if want("fig10") {
		done := section("Figure 10: sensitivity sweeps with STEM")
		for _, b := range []string{"omnetpp", "ammp"} {
			tbl, err := stem.Sweep(stem.SweepConfig{Benchmark: b, Run: sweepRun})
			if err != nil {
				fail(err)
			}
			fmt.Fprint(out, tbl.String())
			writeCSV("fig10_"+b, tbl)
			fmt.Fprintln(out)
		}
		done()
	}

	if want("ablation") {
		done := section("Ablations (beyond the paper): STEM mechanisms and parameters")
		tbl, err := stem.Ablate(stem.ComponentVariants(), nil, sweepRun)
		if err != nil {
			fail(err)
		}
		fmt.Fprint(out, tbl.String())
		writeCSV("ablation_components", tbl)
		fmt.Fprintln(out)
		for _, p := range []string{"k", "n", "m", "heap"} {
			vs, err := stem.ParameterVariants(p)
			if err != nil {
				fail(err)
			}
			tbl, err := stem.Ablate(vs, []string{"omnetpp", "ammp"}, sweepRun)
			if err != nil {
				fail(err)
			}
			fmt.Fprint(out, tbl.String())
			fmt.Fprintln(out)
		}
		done()
	}

	if want("extension") {
		done := section("Extension (beyond the paper): STEM vs the RRIP family")
		tbl, err := stem.ExtensionComparison(sweepRun)
		if err != nil {
			fail(err)
		}
		fmt.Fprint(out, tbl.String())
		writeCSV("extension_rrip", tbl)
		fmt.Fprintln(out)
		done()
	}

	if want("replicate") {
		done := section("Replication (beyond the paper): seed robustness")
		res, err := stem.Replicate(sweepRun, []uint64{0x57E4, 1, 2, 3, 4})
		if err != nil {
			fail(err)
		}
		tbl := stem.ReplicationTable(res)
		fmt.Fprint(out, tbl.String())
		writeCSV("replication", tbl)
		fmt.Fprintln(out)
		done()
	}

	if want("table3") {
		done := section("Table 3: hardware overhead")
		r := stem.Table3()
		fmt.Fprintf(out, "tag bits %d, rank bits %d, %d-bit shadow signatures\n",
			r.TagBits, r.RankBits, 10)
		fmt.Fprintf(out, "CC bits        %8d\n", r.CCBits)
		fmt.Fprintf(out, "shadow store   %8d\n", r.ShadowBits)
		fmt.Fprintf(out, "counters       %8d\n", r.CounterBits)
		fmt.Fprintf(out, "assoc table    %8d\n", r.AssocTableBits)
		fmt.Fprintf(out, "selector heap  %8d\n", r.HeapBits)
		fmt.Fprintf(out, "total extra    %8d bits over %d baseline bits = %.2f%% (paper: 3.1%%)\n",
			r.ExtraBits(), r.BaselineDataBits+r.BaselineTagBits, 100*r.OverheadFraction)
		done()
	}
}

package main

import (
	"strings"
	"testing"
)

func TestSectionTimerUsesInjectedClock(t *testing.T) {
	var buf strings.Builder
	tick := int64(0)
	section := sectionTimer(&buf, func() int64 {
		tick += 1_500_000_000 // each clock read advances 1.5s
		return tick
	})
	done := section("Example section")
	done()
	got := buf.String()
	want := "==== Example section ====\n(1.5s)\n\n"
	if got != want {
		t.Fatalf("sectionTimer output = %q, want %q", got, want)
	}
}

// Command stemlint runs the repository's project-specific static analyzers
// (see internal/analysis and DESIGN.md §9) over the module:
//
//	go run ./cmd/stemlint ./...                 # the CI gate
//	go run ./cmd/stemlint -json ./...           # machine-readable findings
//	go run ./cmd/stemlint -unused-allows ./...  # also fail on stale suppressions
//	go run ./cmd/stemlint -list                 # the analyzer suite
//
// Exit status: 0 when clean, 1 when any diagnostic survives suppression,
// 2 on usage or load errors. Findings are suppressed line by line with
// `//lint:allow(<analyzer>) reason`; the reason is mandatory. With
// -unused-allows, suppressions that no longer match any finding are
// reported (and fail the run) too — run it over the whole module, since a
// subset run legitimately leaves out-of-scope allows unmatched.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		unused  = flag.Bool("unused-allows", false, "also report //lint:allow comments that suppressed nothing")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stemlint [-json] [-unused-allows] [packages]\n\nRuns the project analyzers (default pattern ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stemlint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fail(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns...)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(paths...)
	if err != nil {
		fail(err)
	}

	res := analysis.RunAll(loader.Fset, pkgs, analysis.All())
	diags := res.Diagnostics
	if *unused {
		diags = append(diags, res.UnusedAllows...)
	}
	base, err := os.Getwd()
	if err != nil {
		base = root
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags, base); err != nil {
			fail(err)
		}
	} else {
		analysis.WriteText(os.Stdout, diags, base)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stemlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

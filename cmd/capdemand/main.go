// Command capdemand reproduces the paper's Figure 1: the distribution of
// set-level capacity demands across sampling periods, computed with the
// per-set stack-distance profiler of §3.1 (2048 sets, 50 000 accesses per
// period, 32-way horizon).
//
// Usage:
//
//	capdemand -bench omnetpp -periods 1000
//	capdemand -bench ammp -csv > ammp.csv
package main

import (
	"flag"
	"fmt"
	"os"

	stem "repro"
	"repro/internal/profile"
)

func main() {
	var (
		bench     = flag.String("bench", "omnetpp", "benchmark analog (paper uses omnetpp and ammp)")
		periods   = flag.Int("periods", 1000, "number of sampling periods (paper: 1000)")
		perPeriod = flag.Int("per-period", 50_000, "accesses per period (paper: 50000)")
		maxWays   = flag.Int("max-ways", 32, "associativity horizon (paper: 32)")
		seed      = flag.Uint64("seed", 0x57E4, "workload seed")
		csv       = flag.Bool("csv", false, "emit per-period CSV instead of the mean table")
	)
	flag.Parse()

	res, err := stem.Figure1(stem.Fig1Config{
		Benchmark: *bench,
		Periods:   *periods,
		PerPeriod: *perPeriod,
		MaxWays:   *maxWays,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	bands := *maxWays/2 + 1
	if *csv {
		// One row per period, one column per demand band — the data behind
		// the paper's stacked-area chart.
		fmt.Print("period")
		for b := 0; b < bands; b++ {
			fmt.Printf(",%q", profile.BandLabel(b))
		}
		fmt.Println()
		for i, p := range res.Periods {
			fmt.Print(i + 1)
			for b := 0; b < bands; b++ {
				fmt.Printf(",%.4f", p.Fraction(b))
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("Figure 1 (%s): mean share of sets per capacity-demand band over %d periods\n\n",
		*bench, len(res.Periods))
	for b := bands - 1; b >= 0; b-- {
		frac := res.MeanFraction(b)
		bar := int(frac*60 + 0.5)
		fmt.Printf("%8s  %6.2f%%  %s\n", profile.BandLabel(b), 100*frac, stars(bar))
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}

// Command capdemand reproduces the paper's Figure 1: the distribution of
// set-level capacity demands across sampling periods, computed with the
// per-set stack-distance profiler of §3.1 (2048 sets, 50 000 accesses per
// period, 32-way horizon).
//
// Usage:
//
//	capdemand -bench omnetpp -periods 1000
//	capdemand -bench ammp -csv > ammp.csv
//	capdemand -bench omnetpp -metrics :6060   # watch feed progress live
package main

import (
	"flag"
	"fmt"
	"os"

	stem "repro"
	"repro/internal/obs"
	"repro/internal/profile"
)

func main() {
	var (
		bench     = flag.String("bench", "omnetpp", "benchmark analog (paper uses omnetpp and ammp)")
		periods   = flag.Int("periods", 1000, "number of sampling periods (paper: 1000)")
		perPeriod = flag.Int("per-period", 50_000, "accesses per period (paper: 50000)")
		maxWays   = flag.Int("max-ways", 32, "associativity horizon (paper: 32)")
		seed      = flag.Uint64("seed", 0x57E4, "workload seed")
		csv       = flag.Bool("csv", false, "emit per-period CSV instead of the mean table")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "capdemand:", err)
		os.Exit(1)
	}

	b, err := stem.BenchmarkByName(*bench)
	if err != nil {
		fail(err)
	}

	tool, err := obs.StartTool(obs.ToolConfig{MetricsAddr: *metricsAddr, Pprof: *pprofFlag})
	if err != nil {
		fail(err)
	}
	defer tool.Close()
	if addr := tool.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "capdemand: metrics at http://%s/metrics\n", addr)
	}
	var reg *obs.Registry
	if tool != nil {
		reg = tool.Registry
	}

	// Drive the profiler directly (rather than through stem.Figure1) so the
	// metrics endpoint can report feed progress while the run is live.
	gen := stem.NewGenerator(b.Workload, stem.PaperGeometry, *seed)
	d := stem.NewDemandProfiler(stem.PaperGeometry, *perPeriod, *maxWays)
	var (
		fed      = reg.Counter("feed.accesses")
		periodsG = reg.Gauge("feed.periods_done")
		totalG   = reg.Gauge("feed.periods_total")
		perChunk = *perPeriod
		nperiods = *periods
	)
	totalG.Set(float64(nperiods))
	for p := 0; p < nperiods; p++ {
		for i := 0; i < perChunk; i++ {
			d.Feed(gen.Next().Block)
		}
		fed.Add(uint64(perChunk))
		periodsG.Set(float64(p + 1))
	}
	dists := d.Periods()

	bands := *maxWays/2 + 1
	if *csv {
		// One row per period, one column per demand band — the data behind
		// the paper's stacked-area chart.
		fmt.Print("period")
		for b := 0; b < bands; b++ {
			fmt.Printf(",%q", profile.BandLabel(b))
		}
		fmt.Println()
		for i, p := range dists {
			fmt.Print(i + 1)
			for b := 0; b < bands; b++ {
				fmt.Printf(",%.4f", p.Fraction(b))
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("Figure 1 (%s): mean share of sets per capacity-demand band over %d periods\n\n",
		*bench, len(dists))
	for b := bands - 1; b >= 0; b-- {
		frac := meanFraction(dists, b)
		bar := int(frac*60 + 0.5)
		fmt.Printf("%8s  %6.2f%%  %s\n", profile.BandLabel(b), 100*frac, stars(bar))
	}
}

func meanFraction(dists []profile.PeriodDist, b int) float64 {
	if len(dists) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range dists {
		sum += p.Fraction(b)
	}
	return sum / float64(len(dists))
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

// TestRunAddrFileAndSlowRequestTrace boots stemd through run() the way the
// CI smoke does: -addr :0 with -addr-file for discovery, -trace JSONL with
// -slow-request low enough that every request is slow. A traced client's
// ids must come back out of the trace file as slow_request events.
func TestRunAddrFileAndSlowRequestTrace(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	traceFile := filepath.Join(dir, "events.jsonl")

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run(runConfig{
			addr:        "127.0.0.1:0",
			capacity:    1 << 10,
			seed:        1,
			nodeID:      -1,
			tracePath:   traceFile,
			slowRequest: time.Nanosecond,
			addrFile:    addrFile,
		}, stop)
	}()

	// The address file appears only after the listener is bound.
	var addr string
	deadline := time.Now().Add(5 * time.Second) //lint:allow(determinism) test timeout
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) { //lint:allow(determinism) test timeout
			close(stop)
			t.Fatalf("addr file never appeared: %v", <-done)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var ids []uint64
	cl, err := client.New(client.Config{
		Addr:       addr,
		TraceEvery: 1,
		OnTrace:    func(s client.TraceSample) { ids = append(ids, s.TraceID) },
	})
	if err != nil {
		close(stop)
		t.Fatal(err)
	}
	if err := cl.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Get("k"); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	// Drain: run() returns only after in-flight requests flushed and the
	// tool (including the JSONL tracer) closed.
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{}
	for _, id := range ids {
		want[id] = true
	}
	if len(want) != 2 {
		t.Fatalf("client traced %d unique ops, want 2", len(want))
	}
	slow := 0
	for _, e := range events {
		if e.Type != obs.EvSlowRequest {
			continue
		}
		slow++
		if !want[e.Trace] {
			t.Errorf("slow_request trace id %#x not sent by the client", e.Trace)
		}
	}
	if slow != 2 {
		t.Errorf("trace file holds %d slow_request events, want 2", slow)
	}
}

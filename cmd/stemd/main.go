// Command stemd serves a stemcache over TCP: the STEM paper's capacity
// manager (set-level LRU/BIP dueling plus taker→giver spilling) as the
// eviction engine of a networked key-value cache, speaking the internal/wire
// protocol.
//
// Usage:
//
//	stemd -addr :7070 -capacity 1048576
//	stemd -addr :7070 -shards 32 -ways 16 -default-ttl 5m
//	stemd -addr :7070 -lru                # sharded-LRU baseline, same geometry
//	stemd -addr :7070 -metrics :6060 -pprof -trace events.jsonl
//	stemd -addr :0 -addr-file addr.txt -trace ev.jsonl -slow-request 2ms
//	stemd -addr :7071 -node-id 1 -cluster-seed 21   # one node of a cluster
//
// As a cluster member (-node-id ≥ 0), stemd derives its cache seed from the
// shared -cluster-seed (so every node's probabilistic devices differ but the
// whole cluster is reproducible from one number) and stamps its node id into
// STATS and DEMAND responses for the rebalancer.
//
// stemd runs until SIGINT/SIGTERM, then drains gracefully: in-flight
// requests finish and their responses are flushed before connections close.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stemcache"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", `listen address ("host:port"; ":0" picks a free port)`)
		capacity   = flag.Int("capacity", 1<<16, "cache capacity in entries (rounded to shards x sets x ways)")
		shards     = flag.Int("shards", 0, "shard count (0 = default 16; rounded to a power of two)")
		ways       = flag.Int("ways", 0, "set associativity (0 = default 8)")
		seed       = flag.Uint64("seed", 0x57E4, "seed for the cache's probabilistic devices")
		defaultTTL = flag.Duration("default-ttl", 0, "TTL applied by SET (0 = never expire; SETTTL overrides per key)")
		lru        = flag.Bool("lru", false, "serve the sharded-LRU baseline instead of STEM (same geometry)")

		loadTTL     = flag.Duration("load-ttl", 0, "freshness TTL for values installed by LOAD fills (0 = -default-ttl)")
		staleTTL    = flag.Duration("stale-ttl", 0, "window after -load-ttl in which LOAD serves stale while one client revalidates (0 = off)")
		negativeTTL = flag.Duration("negative-ttl", time.Second, "how long LOAD caches origin misses (0 = off)")
		ttlJitter   = flag.Float64("ttl-jitter", 0, "fraction in [0,1) subtracted randomly from loaded TTLs to decorrelate expiry (0 = off)")
		leaseWait   = flag.Duration("lease-wait", 0, "how long a LOAD waits on another client's fetch lease before taking it over (0 = default 1s)")

		nodeID      = flag.Int("node-id", -1, "cluster node id (-1 = standalone; ≥ 0 joins a cluster)")
		clusterSeed = flag.Uint64("cluster-seed", 0, "shared cluster seed; with -node-id it derives the cache seed (overriding -seed)")

		maxConns     = flag.Int("max-conns", 0, "max concurrently served connections (0 = default 1024)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-frame read deadline (0 = default 10s)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-flush write deadline (0 = default 10s)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "idle connection close (0 = default 5m, negative = off)")
		drainTimeout = flag.Duration("drain-timeout", 0, "graceful shutdown grace (0 = default 5s)")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
		tracePath   = flag.String("trace", "", `write mechanism events as JSONL to this file ("-" for stdout)`)
		slowReq     = flag.Duration("slow-request", 0, "with -trace: emit a slow_request event for requests whose decode+handle exceeds this (0 = off)")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts using :0)")
	)
	flag.Parse()

	if err := run(runConfig{
		addr: *addr, capacity: *capacity, shards: *shards, ways: *ways,
		seed: *seed, defaultTTL: *defaultTTL, lru: *lru,
		loadTTL: *loadTTL, staleTTL: *staleTTL, negativeTTL: *negativeTTL,
		ttlJitter: *ttlJitter, leaseWait: *leaseWait,
		nodeID: *nodeID, clusterSeed: *clusterSeed,
		maxConns: *maxConns, readTimeout: *readTimeout, writeTimeout: *writeTimeout,
		idleTimeout: *idleTimeout, drainTimeout: *drainTimeout,
		metricsAddr: *metricsAddr, pprof: *pprofFlag, tracePath: *tracePath,
		slowRequest: *slowReq, addrFile: *addrFile,
	}, nil); err != nil {
		fmt.Fprintln(os.Stderr, "stemd:", err)
		os.Exit(1)
	}
}

// runConfig is main's flag set as a value, so run is testable.
type runConfig struct {
	addr       string
	capacity   int
	shards     int
	ways       int
	seed       uint64
	defaultTTL time.Duration
	lru        bool

	loadTTL     time.Duration
	staleTTL    time.Duration
	negativeTTL time.Duration
	ttlJitter   float64
	leaseWait   time.Duration

	nodeID      int
	clusterSeed uint64

	maxConns     int
	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	drainTimeout time.Duration

	metricsAddr string
	pprof       bool
	tracePath   string
	slowRequest time.Duration
	addrFile    string
}

// run builds the cache and server, then blocks until a termination signal
// (or stop closing, for tests) and drains.
func run(cfg runConfig, stop <-chan struct{}) error {
	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   cfg.metricsAddr,
		Pprof:         cfg.pprof,
		TracePath:     cfg.tracePath,
		SnapshotEvery: -1, // snapshots are a simulator device; servers expose /metrics instead
	})
	if err != nil {
		return err
	}
	defer tool.Close()

	ccfg := stemcache.Config{
		Capacity:   cfg.capacity,
		Shards:     cfg.shards,
		Ways:       cfg.ways,
		Seed:       cfg.seed,
		DefaultTTL: cfg.defaultTTL,

		LoadTTL:     cfg.loadTTL,
		StaleTTL:    cfg.staleTTL,
		NegativeTTL: cfg.negativeTTL,
		TTLJitter:   cfg.ttlJitter,
	}
	if cfg.nodeID >= 0 {
		ccfg.Seed = cluster.NodeSeed(cfg.clusterSeed, cfg.nodeID)
	}
	var reg *obs.Registry
	var events obs.Observer
	if opts := tool.Options(); opts != nil {
		reg = opts.Registry
		ccfg.Metrics = opts.Registry
		ccfg.Observer = opts.Tracer
		// Slow-request events go to the same JSONL stream as the mechanism
		// events, so stemtrace can window one against the other.
		if opts.Tracer != nil {
			events = opts.Tracer
		}
	}
	var cache *stemcache.Cache[string, []byte]
	if cfg.lru {
		cache, err = stemcache.NewShardedLRU[string, []byte](ccfg)
	} else {
		cache, err = stemcache.New[string, []byte](ccfg)
	}
	if err != nil {
		return err
	}
	defer cache.Close()

	srv, err := server.New(cache, server.Config{
		NodeID:       max(cfg.nodeID, 0),
		MaxConns:     cfg.maxConns,
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  cfg.idleTimeout,
		DrainTimeout: cfg.drainTimeout,
		LeaseWait:    cfg.leaseWait,
		Metrics:      reg,
		SlowRequest:  cfg.slowRequest,
		Events:       events,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(cfg.addr); err != nil {
		return err
	}
	if cfg.addrFile != "" {
		// Written after the bind, so a script that waits for the file to
		// appear can connect immediately.
		if err := os.WriteFile(cfg.addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			srv.Close()
			return err
		}
	}

	engine := "STEM"
	if cfg.lru {
		engine = "sharded-LRU baseline"
	}
	fmt.Fprintf(os.Stderr, "stemd: serving %s cache (%d entries) on %s\n",
		engine, cache.Capacity(), srv.Addr())
	if maddr := tool.MetricsAddr(); maddr != "" {
		fmt.Fprintf(os.Stderr, "stemd: metrics at http://%s/metrics\n", maddr)
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigC)
	select {
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "stemd: %v; draining\n", sig)
	case <-stop:
	}
	return srv.Close()
}

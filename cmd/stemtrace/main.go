// Command stemtrace is the offline analyzer for `-trace` JSONL event
// streams: it joins the server's slow-request events against the cluster
// rebalancer's demand and migration events on one timeline, windowed by
// rebalancing epoch, so a latency spike can be read against what the
// capacity mechanisms were doing when it happened.
//
// The join works because one tracer serializes all events: file order is
// emission order. A window opens at the first event of each rebalancing
// epoch (EvNodeDemand / EvSlotMigrate carry the epoch in Tick) and collects
// every slow request emitted until the next epoch begins; slow requests
// before the first epoch marker land in a prologue window. Traced slow
// requests surface their trace ids, which match the TraceID the client's
// OnTrace callback reported for the same operation — the end-to-end join.
//
// Usage:
//
//	stemtrace events.jsonl
//	stemtrace -top 5 node0.jsonl node1.jsonl
//	stemtrace -json report.json events.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	var (
		top      = flag.Int("top", 3, "worst traced slow requests to list per window")
		jsonPath = flag.String("json", "", `write the analysis as JSON to this file ("-" for stdout)`)
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "stemtrace: need at least one events.jsonl path")
		os.Exit(2)
	}
	if err := run(flag.Args(), *top, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "stemtrace:", err)
		os.Exit(1)
	}
}

// fileTimeline is one trace file's windowed analysis.
type fileTimeline struct {
	File    string   `json:"file"`
	Events  int      `json:"events"`
	Windows []window `json:"windows"`
}

// window aggregates one rebalancing epoch's worth of the event stream.
type window struct {
	// Epoch is the rebalancing epoch (EvNodeDemand/EvSlotMigrate Tick);
	// -1 marks the prologue before the first epoch event.
	Epoch int64 `json:"epoch"`
	// Demands counts node demand polls; NodeClasses tallies the resulting
	// classifications ("taker"/"giver"/"neutral" → node count).
	Demands     int            `json:"demands,omitempty"`
	NodeClasses map[string]int `json:"node_classes,omitempty"`
	// Migrations counts slot moves; KeysMoved sums the keys they carried.
	Migrations int    `json:"migrations,omitempty"`
	KeysMoved  uint64 `json:"keys_moved,omitempty"`
	// Slow counts slow-request events in the window; Traced is how many of
	// them carried a trace id.
	Slow   int `json:"slow"`
	Traced int `json:"traced,omitempty"`
	// MeanMicros/MaxMicros describe the slow requests' server-side time.
	MeanMicros float64 `json:"mean_us,omitempty"`
	MaxMicros  uint64  `json:"max_us,omitempty"`
	// SlowOps tallies slow requests by opcode name.
	SlowOps map[string]int `json:"slow_ops,omitempty"`
	// SlowTenants tallies slow requests by tenant namespace ("default" for
	// requests in the default namespace), so a latency regression can be
	// attributed to the tenant paying it.
	SlowTenants map[string]int `json:"slow_tenants,omitempty"`
	// Worst lists the slowest traced requests, worst first, for joining
	// against client-side trace samples.
	Worst []slowTrace `json:"worst,omitempty"`

	sumMicros uint64
}

// slowTrace identifies one traced slow request.
type slowTrace struct {
	Trace  uint64 `json:"trace"`
	Op     string `json:"op"`
	Micros uint64 `json:"us"`
	// Tenant is the request's namespace ("" = default tenant).
	Tenant string `json:"tenant,omitempty"`
}

// tenantLabel names a slow request's namespace for tallies and display.
func tenantLabel(ns string) string {
	if ns == "" {
		return "default"
	}
	return ns
}

func run(paths []string, top int, jsonPath string) error {
	timelines := make([]fileTimeline, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		events, err := obs.ReadEvents(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		timelines = append(timelines, fileTimeline{
			File:    p,
			Events:  len(events),
			Windows: buildTimeline(events, top),
		})
	}

	for _, tl := range timelines {
		printTimeline(tl)
	}

	if jsonPath != "" {
		b, err := json.MarshalIndent(timelines, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// buildTimeline windows an event stream by rebalancing epoch. File order is
// emission order, so a window is simply "everything between the first event
// of one epoch and the first event of the next"; slow requests inherit the
// window that was current when they were emitted.
func buildTimeline(events []obs.Event, top int) []window {
	var windows []window
	cur := -1 // index into windows; -1 = nothing open yet
	open := func(epoch int64) *window {
		if cur >= 0 && windows[cur].Epoch == epoch {
			return &windows[cur]
		}
		windows = append(windows, window{Epoch: epoch})
		cur = len(windows) - 1
		return &windows[cur]
	}
	for i := range events {
		e := &events[i]
		switch e.Type {
		case obs.EvNodeDemand:
			w := open(int64(e.Tick))
			w.Demands++
			if e.Class != "" {
				if w.NodeClasses == nil {
					w.NodeClasses = map[string]int{}
				}
				w.NodeClasses[e.Class]++
			}
		case obs.EvSlotMigrate:
			w := open(int64(e.Tick))
			w.Migrations++
			w.KeysMoved += e.Life
		case obs.EvSlowRequest:
			var w *window
			if cur >= 0 {
				w = &windows[cur]
			} else {
				w = open(-1) // prologue: slow requests before any epoch
			}
			w.Slow++
			w.sumMicros += e.Micros
			if e.Micros > w.MaxMicros {
				w.MaxMicros = e.Micros
			}
			if w.SlowOps == nil {
				w.SlowOps = map[string]int{}
			}
			w.SlowOps[e.Op]++
			if w.SlowTenants == nil {
				w.SlowTenants = map[string]int{}
			}
			w.SlowTenants[tenantLabel(e.Tenant)]++
			if e.Trace != 0 {
				w.Traced++
				w.Worst = append(w.Worst, slowTrace{Trace: e.Trace, Op: e.Op, Micros: e.Micros, Tenant: e.Tenant})
			}
		}
	}
	for i := range windows {
		w := &windows[i]
		if w.Slow > 0 {
			w.MeanMicros = float64(w.sumMicros) / float64(w.Slow)
		}
		// Worst traced requests first; ties broken by trace id so the
		// output is stable for identical timings.
		sort.Slice(w.Worst, func(a, b int) bool {
			if w.Worst[a].Micros != w.Worst[b].Micros {
				return w.Worst[a].Micros > w.Worst[b].Micros
			}
			return w.Worst[a].Trace < w.Worst[b].Trace
		})
		if top >= 0 && len(w.Worst) > top {
			w.Worst = w.Worst[:top]
		}
	}
	return windows
}

// printTimeline renders one file's windows as a text table.
func printTimeline(tl fileTimeline) {
	fmt.Printf("%s: %d events, %d windows\n", tl.File, tl.Events, len(tl.Windows))
	if len(tl.Windows) == 0 {
		fmt.Println()
		return
	}
	fmt.Printf("  %8s %8s %6s %6s %6s %6s %10s %10s  %s\n",
		"epoch", "demands", "moves", "keys", "slow", "trcd", "mean_us", "max_us", "classes / worst traces")
	for _, w := range tl.Windows {
		epoch := fmt.Sprintf("%d", w.Epoch)
		if w.Epoch < 0 {
			epoch = "pre"
		}
		fmt.Printf("  %8s %8d %6d %6d %6d %6d %10.1f %10d  %s\n",
			epoch, w.Demands, w.Migrations, w.KeysMoved, w.Slow, w.Traced,
			w.MeanMicros, w.MaxMicros, windowDetail(w))
	}
	fmt.Println()
}

// windowDetail renders the classification tally, the per-tenant slow tally
// and the worst traces compactly, in deterministic order.
func windowDetail(w window) string {
	var out string
	for _, cls := range sortedKeys(w.NodeClasses) {
		out += fmt.Sprintf("%s:%d ", cls, w.NodeClasses[cls])
	}
	for _, ns := range sortedKeys(w.SlowTenants) {
		out += fmt.Sprintf("ns/%s:%d ", ns, w.SlowTenants[ns])
	}
	for _, st := range w.Worst {
		if st.Tenant != "" {
			out += fmt.Sprintf("%#x(%s@%s %dus) ", st.Trace, st.Op, st.Tenant, st.Micros)
		} else {
			out += fmt.Sprintf("%#x(%s %dus) ", st.Trace, st.Op, st.Micros)
		}
	}
	if out == "" {
		return "-"
	}
	return out[:len(out)-1]
}

// sortedKeys returns m's keys in sorted order (map range order is not
// deterministic; report output must be).
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

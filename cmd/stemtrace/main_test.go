package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// stream is the synthetic emission-order event sequence the timeline tests
// window: a prologue slow request, then two rebalancing epochs with demand
// polls, migrations and slow requests interleaved the way one serialized
// tracer would emit them.
var stream = []obs.Event{
	{Type: obs.EvSlowRequest, Tick: 10, Set: -1, Op: "get", Micros: 900, Trace: 0xaa},
	{Type: obs.EvNodeDemand, Tick: 1, Set: 0, Class: "giver"},
	{Type: obs.EvNodeDemand, Tick: 1, Set: 1, Class: "taker"},
	{Type: obs.EvSlotMigrate, Tick: 1, Set: 7, ScS: 0, Partner: 1, Life: 42},
	{Type: obs.EvSlowRequest, Tick: 120, Set: -1, Op: "get", Micros: 1500, Trace: 0xbb},
	{Type: obs.EvSlowRequest, Tick: 130, Set: -1, Op: "set", Micros: 500, Trace: 0},
	{Type: obs.EvSpill, Tick: 131, Set: 3, Partner: 9}, // unrelated mechanism event: ignored
	{Type: obs.EvNodeDemand, Tick: 2, Set: 0, Class: "neutral"},
	{Type: obs.EvNodeDemand, Tick: 2, Set: 1, Class: "neutral"},
	{Type: obs.EvSlowRequest, Tick: 250, Set: -1, Op: "get", Micros: 3000, Trace: 0xcc, Tenant: "web"},
	{Type: obs.EvSlowRequest, Tick: 251, Set: -1, Op: "get", Micros: 3000, Trace: 0xdd, Tenant: "web"},
	{Type: obs.EvSlowRequest, Tick: 252, Set: -1, Op: "mget", Micros: 7000, Trace: 0xee, Tenant: "batch"},
}

func TestBuildTimelineWindows(t *testing.T) {
	ws := buildTimeline(stream, 2)
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3 (prologue + 2 epochs): %+v", len(ws), ws)
	}

	pre := ws[0]
	if pre.Epoch != -1 || pre.Slow != 1 || pre.Traced != 1 || pre.MaxMicros != 900 {
		t.Errorf("prologue window wrong: %+v", pre)
	}

	e1 := ws[1]
	if e1.Epoch != 1 || e1.Demands != 2 || e1.Migrations != 1 || e1.KeysMoved != 42 {
		t.Errorf("epoch 1 mechanism tallies wrong: %+v", e1)
	}
	if e1.Slow != 2 || e1.Traced != 1 || e1.MaxMicros != 1500 || e1.MeanMicros != 1000 {
		t.Errorf("epoch 1 slow tallies wrong: %+v", e1)
	}
	if e1.NodeClasses["giver"] != 1 || e1.NodeClasses["taker"] != 1 {
		t.Errorf("epoch 1 classes wrong: %v", e1.NodeClasses)
	}
	if e1.SlowOps["get"] != 1 || e1.SlowOps["set"] != 1 {
		t.Errorf("epoch 1 slow ops wrong: %v", e1.SlowOps)
	}

	e2 := ws[2]
	if e2.Epoch != 2 || e2.Demands != 2 || e2.Slow != 3 || e2.Traced != 3 {
		t.Errorf("epoch 2 tallies wrong: %+v", e2)
	}
	// top=2 keeps the two worst; the 3000us tie broke on trace id.
	if len(e2.Worst) != 2 || e2.Worst[0].Trace != 0xee || e2.Worst[1].Trace != 0xcc {
		t.Errorf("epoch 2 worst traces wrong: %+v", e2.Worst)
	}
	// Tenant attribution: epoch 2's slow requests came from two namespaces,
	// epoch 1's carried none (tallied as "default"); worst traces name their
	// tenant for the client-side join.
	if e2.SlowTenants["web"] != 2 || e2.SlowTenants["batch"] != 1 {
		t.Errorf("epoch 2 slow tenants wrong: %v", e2.SlowTenants)
	}
	if e1.SlowTenants["default"] != 2 {
		t.Errorf("epoch 1 slow tenants wrong: %v", e1.SlowTenants)
	}
	if e2.Worst[0].Tenant != "batch" || e2.Worst[1].Tenant != "web" {
		t.Errorf("worst traces lost tenant attribution: %+v", e2.Worst)
	}
}

// TestBuildTimelineQuietStream: an event stream with mechanisms but zero
// slow requests must analyze cleanly (the common healthy case), as must an
// empty stream.
func TestBuildTimelineQuietStream(t *testing.T) {
	quiet := []obs.Event{
		{Type: obs.EvNodeDemand, Tick: 1, Set: 0, Class: "neutral"},
		{Type: obs.EvSlotMigrate, Tick: 1, Set: 3, Life: 5},
	}
	ws := buildTimeline(quiet, 3)
	if len(ws) != 1 || ws[0].Slow != 0 || ws[0].MeanMicros != 0 || len(ws[0].Worst) != 0 {
		t.Errorf("quiet stream: %+v", ws)
	}
	if ws[0].SlowTenants != nil {
		t.Errorf("quiet stream grew a tenant tally: %v", ws[0].SlowTenants)
	}
	if ws := buildTimeline(nil, 3); len(ws) != 0 {
		t.Errorf("empty stream produced windows: %+v", ws)
	}
}

// TestRunEndToEnd writes a real JSONL trace through the tracer, analyzes it
// through run(), and checks the JSON document round trip.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "events.jsonl")
	var buf bytes.Buffer
	tr := obs.NewJSONLTracer(&buf)
	for _, e := range stream {
		tr.Event(e)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "report.json")
	if err := run([]string{tracePath}, 3, outPath); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var tls []fileTimeline
	if err := json.Unmarshal(b, &tls); err != nil {
		t.Fatal(err)
	}
	if len(tls) != 1 || tls[0].Events != len(stream) || len(tls[0].Windows) != 3 {
		t.Fatalf("report wrong: %+v", tls)
	}
	if w := tls[0].Windows[2]; len(w.Worst) != 3 || w.Worst[0].Micros != 7000 {
		t.Errorf("worst traces lost in JSON round trip: %+v", w.Worst)
	}

	// A missing file is an error, not a panic.
	if err := run([]string{filepath.Join(dir, "absent.jsonl")}, 3, ""); err == nil {
		t.Error("run succeeded on a missing trace file")
	}
}

// Command stemsim runs one benchmark analog through one cache-management
// scheme and reports the paper's metrics (miss rate, MPKI, AMAT, CPI) plus
// the scheme's mechanism counters.
//
// Usage:
//
//	stemsim -bench omnetpp -scheme STEM
//	stemsim -bench ammp -scheme SBC -ways 8 -measure 2000000
//	stemsim -bench omnetpp -metrics :6060 -trace events.jsonl
//	stemsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	stem "repro"
	"repro/internal/obs"
)

func main() {
	var (
		bench   = flag.String("bench", "omnetpp", "benchmark analog name (see -list)")
		scheme  = flag.String("scheme", "STEM", "scheme: "+strings.Join(stem.Schemes(), ", "))
		sets    = flag.Int("sets", stem.PaperGeometry.Sets, "number of cache sets (power of two)")
		ways    = flag.Int("ways", stem.PaperGeometry.Ways, "associativity")
		line    = flag.Int("line", stem.PaperGeometry.LineSize, "line size in bytes")
		warmup  = flag.Int("warmup", 1_000_000, "warm-up accesses (unmeasured)")
		measure = flag.Int("measure", 3_000_000, "measured accesses")
		seed    = flag.Uint64("seed", 0x57E4, "run seed")
		list    = flag.Bool("list", false, "list benchmarks and exit")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
		tracePath   = flag.String("trace", "", `write mechanism events as JSONL to this file ("-" for stdout)`)
		snapEvery   = flag.Int("snapshot-every", 0, "accesses between run snapshots (0 = default, negative = off)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark  class  paper-LRU-MPKI")
		for _, b := range stem.Benchmarks() {
			fmt.Printf("%-10s I%-4d %8.3f\n", b.Name, b.Class, b.PaperMPKI)
		}
		return
	}

	b, err := stem.BenchmarkByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   *metricsAddr,
		Pprof:         *pprofFlag,
		TracePath:     *tracePath,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stemsim:", err)
		os.Exit(1)
	}
	defer tool.Close()
	if addr := tool.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "stemsim: metrics at http://%s/metrics\n", addr)
	}

	cfg := stem.RunConfig{
		Geom:    stem.Geometry{Sets: *sets, Ways: *ways, LineSize: *line},
		Warmup:  *warmup,
		Measure: *measure,
		Seed:    *seed,
		Obs:     tool.Options(),
	}
	res, err := stem.RunWorkload(b.Workload, *scheme, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("benchmark   %s (class %d)\n", b.Name, b.Class)
	fmt.Printf("scheme      %s\n", res.Scheme)
	fmt.Printf("geometry    %d sets x %d ways x %dB = %d KB\n",
		cfg.Geom.Sets, cfg.Geom.Ways, cfg.Geom.LineSize, cfg.Geom.CapacityBytes()/1024)
	fmt.Printf("accesses    %d measured (after %d warm-up)\n", res.Stats.Accesses, cfg.Warmup)
	fmt.Println()
	fmt.Printf("miss rate   %.4f\n", res.MissRate)
	fmt.Printf("MPKI        %.3f   (paper LRU reference: %.3f)\n", res.MPKI, b.PaperMPKI)
	fmt.Printf("AMAT        %.2f cycles\n", res.AMAT)
	fmt.Printf("CPI         %.3f\n", res.CPI)
	fmt.Println()
	st := res.Stats
	fmt.Printf("hits %d  misses %d  writebacks %d\n", st.Hits, st.Misses, st.Writebacks)
	if st.SecondaryRefs > 0 {
		fmt.Printf("secondary probes %d  secondary hits %d\n", st.SecondaryRefs, st.SecondaryHits)
	}
	if st.Couplings > 0 || st.Spills > 0 {
		fmt.Printf("couplings %d  decouplings %d  spills %d\n", st.Couplings, st.Decouplings, st.Spills)
	}
	if st.PolicySwaps > 0 {
		fmt.Printf("per-set policy swaps %d\n", st.PolicySwaps)
	}
	if st.ShadowHits > 0 {
		fmt.Printf("shadow-directory hits %d\n", st.ShadowHits)
	}
}

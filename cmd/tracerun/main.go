// Command tracerun replays a recorded reference trace through one or more
// cache-management schemes — the adoption path for running real traces
// (converted from pin/ChampSim/Dinero tooling) instead of the synthetic
// analogs.
//
// Usage:
//
//	tracerun -trace app.trc.gz                       # all six schemes
//	tracerun -trace app.trc -schemes LRU,STEM
//	tracerun -din app.din -line 64 -schemes STEM     # Dinero text input
//	tracerun -record omnetpp -n 5000000 -trace out.trc.gz   # capture an analog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	stem "repro"
	"repro/internal/tracefile"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "native trace file (.trc or .trc.gz)")
		dinPath   = flag.String("din", "", "Dinero-style text trace")
		line      = flag.Int("line", 64, "cache line size for -din address conversion")
		schemes   = flag.String("schemes", strings.Join(stem.Schemes(), ","), "comma-separated schemes")
		sets      = flag.Int("sets", stem.PaperGeometry.Sets, "cache sets")
		ways      = flag.Int("ways", stem.PaperGeometry.Ways, "associativity")
		warmFrac  = flag.Float64("warm", 0.25, "fraction of the trace used as warm-up")
		seed      = flag.Uint64("seed", 0x57E4, "scheme seed")
		record    = flag.String("record", "", "record this benchmark analog instead of replaying")
		recordN   = flag.Int("n", 5_000_000, "references to record with -record")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracerun:", err)
		os.Exit(1)
	}

	if *record != "" {
		if *tracePath == "" {
			fail(fmt.Errorf("-record needs -trace for the output path"))
		}
		b, err := stem.BenchmarkByName(*record)
		if err != nil {
			fail(err)
		}
		geom := stem.Geometry{Sets: *sets, Ways: *ways, LineSize: *line}
		w, err := tracefile.Create(*tracePath, tracefile.Header{LineSize: uint32(*line)})
		if err != nil {
			fail(err)
		}
		if err := tracefile.Record(w, stem.NewGenerator(b.Workload, geom, *seed), *recordN); err != nil {
			fail(err)
		}
		if err := w.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d references of %s to %s\n", *recordN, *record, *tracePath)
		return
	}

	var refs []stem.Ref
	switch {
	case *tracePath != "":
		r, err := tracefile.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		for {
			ref, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			refs = append(refs, ref)
		}
		r.Close()
	case *dinPath != "":
		f, err := os.Open(*dinPath)
		if err != nil {
			fail(err)
		}
		refs, err = tracefile.ParseDin(f, *line)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -trace, -din or -record (see -help)"))
	}
	if len(refs) < 100 {
		fail(fmt.Errorf("trace too short: %d references", len(refs)))
	}

	geom := stem.Geometry{Sets: *sets, Ways: *ways, LineSize: *line}
	warm := int(float64(len(refs)) * *warmFrac)
	timing := stem.DefaultTiming()

	fmt.Printf("trace: %d references (%d warm-up), %d sets x %d ways\n\n",
		len(refs), warm, *sets, *ways)
	fmt.Println("scheme     miss-rate     MPKI     AMAT      CPI")
	for _, name := range strings.Split(*schemes, ",") {
		name = strings.TrimSpace(name)
		c, err := stem.NewScheme(name, geom, *seed)
		if err != nil {
			fail(err)
		}
		acct := stem.NewAccount(timing)
		for i, r := range refs {
			out := c.Access(stem.Access{Block: r.Block, Write: r.Write})
			if i == warm {
				c.ResetStats()
				acct = stem.NewAccount(timing)
			}
			if i >= warm {
				acct.Record(r.Instrs, out)
			}
		}
		st := c.Stats()
		fmt.Printf("%-8s   %9.4f  %7.3f  %7.2f  %7.3f\n",
			name, st.MissRate(), acct.MPKI(), acct.AMAT(), acct.CPI())
	}
}

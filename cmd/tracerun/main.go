// Command tracerun replays a recorded reference trace through one or more
// cache-management schemes — the adoption path for running real traces
// (converted from pin/ChampSim/Dinero tooling) instead of the synthetic
// analogs.
//
// Usage:
//
//	tracerun -trace app.trc.gz                       # all six schemes
//	tracerun -trace app.trc -schemes LRU,STEM
//	tracerun -din app.din -line 64 -schemes STEM     # Dinero text input
//	tracerun -trace app.trc -schemes STEM -events ev.jsonl -metrics :6060
//	tracerun -record omnetpp -n 5000000 -trace out.trc.gz   # capture an analog
//
// The event log (-events; -trace already names the input) covers the
// measured portion of every replayed scheme in sequence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	stem "repro"
	"repro/internal/obs"
	"repro/internal/tracefile"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "native trace file (.trc or .trc.gz)")
		dinPath   = flag.String("din", "", "Dinero-style text trace")
		line      = flag.Int("line", 64, "cache line size for -din address conversion")
		schemes   = flag.String("schemes", strings.Join(stem.Schemes(), ","), "comma-separated schemes")
		sets      = flag.Int("sets", stem.PaperGeometry.Sets, "cache sets")
		ways      = flag.Int("ways", stem.PaperGeometry.Ways, "associativity")
		warmFrac  = flag.Float64("warm", 0.25, "fraction of the trace used as warm-up")
		seed      = flag.Uint64("seed", 0x57E4, "scheme seed")
		record    = flag.String("record", "", "record this benchmark analog instead of replaying")
		recordN   = flag.Int("n", 5_000_000, "references to record with -record")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
		eventsPath  = flag.String("events", "", "write mechanism events as JSONL to this file (-trace is the input)")
		snapEvery   = flag.Int("snapshot-every", 0, "accesses between run snapshots (0 = default, negative = off)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracerun:", err)
		os.Exit(1)
	}

	if *record != "" {
		if *tracePath == "" {
			fail(fmt.Errorf("-record needs -trace for the output path"))
		}
		b, err := stem.BenchmarkByName(*record)
		if err != nil {
			fail(err)
		}
		geom := stem.Geometry{Sets: *sets, Ways: *ways, LineSize: *line}
		w, err := tracefile.Create(*tracePath, tracefile.Header{LineSize: uint32(*line)})
		if err != nil {
			fail(err)
		}
		if err := tracefile.Record(w, stem.NewGenerator(b.Workload, geom, *seed), *recordN); err != nil {
			fail(err)
		}
		if err := w.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d references of %s to %s\n", *recordN, *record, *tracePath)
		return
	}

	var refs []stem.Ref
	switch {
	case *tracePath != "":
		r, err := tracefile.Open(*tracePath)
		if err != nil {
			fail(err)
		}
		for {
			ref, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			refs = append(refs, ref)
		}
		r.Close()
	case *dinPath != "":
		f, err := os.Open(*dinPath)
		if err != nil {
			fail(err)
		}
		refs, err = tracefile.ParseDin(f, *line)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("need -trace, -din or -record (see -help)"))
	}
	if len(refs) < 100 {
		fail(fmt.Errorf("trace too short: %d references", len(refs)))
	}

	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   *metricsAddr,
		Pprof:         *pprofFlag,
		TracePath:     *eventsPath,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fail(err)
	}
	defer tool.Close()
	if addr := tool.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "tracerun: metrics at http://%s/metrics\n", addr)
	}
	o := tool.Options()

	geom := stem.Geometry{Sets: *sets, Ways: *ways, LineSize: *line}
	warm := int(float64(len(refs)) * *warmFrac)
	timing := stem.DefaultTiming()

	// Shared across the sequential scheme replays: counters accumulate,
	// snapshot gauges show the scheme currently replaying.
	var reg *obs.Registry
	if o.Enabled() {
		reg = o.Registry
	}
	var (
		accessesC = reg.Counter("run.accesses")
		hitsC     = reg.Counter("run.hits")
		missesC   = reg.Counter("run.misses")
	)

	fmt.Printf("trace: %d references (%d warm-up), %d sets x %d ways\n\n",
		len(refs), warm, *sets, *ways)
	fmt.Println("scheme     miss-rate     MPKI     AMAT      CPI")
	for _, name := range strings.Split(*schemes, ",") {
		name = strings.TrimSpace(name)
		c, err := stem.NewScheme(name, geom, *seed)
		if err != nil {
			fail(err)
		}
		acct := stem.NewAccount(timing)
		for i, r := range refs {
			out := c.Access(stem.Access{Block: r.Block, Write: r.Write})
			if i == warm {
				c.ResetStats()
				acct = stem.NewAccount(timing)
				// Attach the tracer only now so the event log reconciles
				// with the measured (post-reset) stats.
				if in, ok := c.(obs.Instrumented); ok && o.Enabled() && o.Tracer != nil {
					in.SetObserver(o.Tracer)
				}
			}
			if i >= warm {
				acct.Record(r.Instrs, out)
				accessesC.Inc()
				if out.Hit {
					hitsC.Inc()
				} else {
					missesC.Inc()
				}
				if o.Enabled() && o.SnapshotEvery > 0 {
					if m := i - warm + 1; m%o.SnapshotEvery == 0 && i != len(refs)-1 {
						o.Publish(obs.MakeSnapshot(c, uint64(m), acct.MPKI(), false))
					}
				}
			}
		}
		if o.Enabled() {
			o.Publish(obs.MakeSnapshot(c, uint64(len(refs)-warm), acct.MPKI(), true))
		}
		if in, ok := c.(obs.Instrumented); ok {
			in.SetObserver(nil)
		}
		st := c.Stats()
		fmt.Printf("%-8s   %9.4f  %7.3f  %7.2f  %7.3f\n",
			name, st.MissRate(), acct.MPKI(), acct.AMAT(), acct.CPI())
	}
}

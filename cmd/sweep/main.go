// Command sweep reproduces the paper's associativity sweeps: Figure 3 (the
// five baseline schemes) and Figure 10 (the same panels with STEM added),
// as MPKI-vs-associativity tables.
//
// Usage:
//
//	sweep -bench omnetpp                       # Figure 10 panel (all six)
//	sweep -bench ammp -schemes LRU,DIP,SBC     # custom subset
//	sweep -bench omnetpp -fig3                 # Figure 3 panel (no STEM)
//	sweep -bench ammp -csv -o ammp_sweep.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	stem "repro"
	"repro/internal/obs"
)

func main() {
	var (
		bench   = flag.String("bench", "omnetpp", "benchmark analog")
		schemes = flag.String("schemes", "", "comma-separated schemes (default: all six)")
		fig3    = flag.Bool("fig3", false, "baseline-only panel (drop STEM), as in Figure 3")
		assocs  = flag.String("assocs", "", "comma-separated associativities (default: the paper's 1..32 ticks)")
		warmup  = flag.Int("warmup", 400_000, "warm-up accesses per point")
		measure = flag.Int("measure", 1_200_000, "measured accesses per point")
		seed    = flag.Uint64("seed", 0x57E4, "run seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of the aligned table")
		outPath = flag.String("o", "", "write the table to this file instead of stdout")

		metricsAddr = flag.String("metrics", "", `serve live metrics JSON on this address (e.g. ":6060")`)
		pprofFlag   = flag.Bool("pprof", false, "with -metrics, also serve /debug/pprof")
		tracePath   = flag.String("trace", "", "write mechanism events as JSONL to this file")
		snapEvery   = flag.Int("snapshot-every", 0, "accesses between run snapshots (0 = default, negative = off)")
	)
	flag.Parse()

	tool, err := obs.StartTool(obs.ToolConfig{
		MetricsAddr:   *metricsAddr,
		Pprof:         *pprofFlag,
		TracePath:     *tracePath,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	defer tool.Close()
	if addr := tool.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "sweep: metrics at http://%s/metrics\n", addr)
	}

	cfg := stem.SweepConfig{
		Benchmark: *bench,
		Run:       stem.RunConfig{Warmup: *warmup, Measure: *measure, Seed: *seed, Obs: tool.Options()},
	}
	switch {
	case *schemes != "":
		cfg.Schemes = strings.Split(*schemes, ",")
	case *fig3:
		cfg.Schemes = []string{"LRU", "DIP", "PELIFO", "VWAY", "SBC"}
	}
	if *assocs != "" {
		for _, a := range strings.Split(*assocs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(a))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad associativity %q: %v\n", a, err)
				os.Exit(1)
			}
			cfg.Assocs = append(cfg.Assocs, v)
		}
	}

	tbl, err := stem.Sweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if *csv {
		fmt.Fprint(out, tbl.CSV())
		return
	}
	fmt.Fprint(out, tbl.String())
}

package main

// The thundering-herd scenario (-herd): the read-through serving claim,
// measured end to end. A self-hosted STEM server fronts a deliberately slow
// fake origin; every round, -herd-workers goroutines (spread over as many
// client instances, i.e. separate connection pools, the way separate
// processes would look to the server) slam one cold key simultaneously.
// Without stampede protection each round would cost ~workers origin
// fetches; with the OpLoad lease protocol it must cost ~1. The scenario
// reports the measured origin-fetch amplification
//
//	amplification = origin_calls / rounds
//
// (1.0 = perfect dedup; the e2e test pins it at ≤ 1.05) and then exercises
// stale-while-revalidate: with the key past its freshness deadline and the
// origin gated shut, every worker must still be answered — from the stale
// value, with zero origin calls on any foreground path — while exactly one
// elected background refresh waits on the gate.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stemcache"
)

// herdConfig shapes one -herd run.
type herdConfig struct {
	// Workers is the herd size per round (concurrent GetOrLoad callers,
	// each on its own client).
	Workers int `json:"workers"`
	// Rounds is how many cold keys the herd stampedes in turn.
	Rounds int `json:"rounds"`
	// OriginDelay is the fake origin's service time — long enough that the
	// whole herd arrives while the first fetch is still in flight.
	OriginDelay time.Duration `json:"origin_delay_ns"`
	// Capacity and Seed shape the self-hosted server's cache.
	Capacity int    `json:"capacity"`
	Seed     uint64 `json:"seed"`
}

// herdResult is the BENCH_loader.json document body.
type herdResult struct {
	Workers int `json:"workers"`
	Rounds  int `json:"rounds"`
	// OriginCalls counts fake-origin fetches across all cold rounds;
	// Amplification is OriginCalls/Rounds (1.0 = perfect dedup).
	OriginCalls   int64   `json:"origin_calls"`
	Amplification float64 `json:"amplification"`
	Seconds       float64 `json:"seconds"`
	// StaleReturns counts workers answered from the stale value while the
	// origin was gated shut; StaleForegroundCalls counts origin fetches any
	// of those foreground paths performed (the SWR contract: 0).
	StaleReturns         int   `json:"stale_returns"`
	StaleForegroundCalls int64 `json:"stale_foreground_origin_calls"`
	// Server-side counters after the run (from STATS): Loads/LoadDedup are
	// the server's lease-table view, StaleServed (the cache's counter)
	// confirms the stale window actually served.
	Loads       uint64 `json:"loads"`
	LoadDedup   uint64 `json:"load_dedup"`
	StaleServed uint64 `json:"stale_served"`
}

// herdReport is the overall JSON document.
type herdReport struct {
	Bench  string     `json:"bench"`
	Config herdConfig `json:"config"`
	Result herdResult `json:"result"`
}

// runHerd executes the scenario and writes the report (see -json).
func runHerd(cfg herdConfig, jsonPath string) error {
	res, err := herdScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("herd          %d workers x %d rounds, origin delay %v\n",
		cfg.Workers, cfg.Rounds, cfg.OriginDelay)
	fmt.Printf("origin calls  %d  (amplification %.3f; 1.000 = perfect dedup)\n",
		res.OriginCalls, res.Amplification)
	fmt.Printf("dedup         %d loads, %d deduplicated server-side\n", res.Loads, res.LoadDedup)
	fmt.Printf("swr           %d stale returns, %d foreground origin calls (want 0), %d served stale\n",
		res.StaleReturns, res.StaleForegroundCalls, res.StaleServed)

	if jsonPath != "" {
		doc := herdReport{Bench: "stemload-herd", Config: cfg, Result: res}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// herdScenario runs both phases against a fresh self-hosted server.
func herdScenario(cfg herdConfig) (herdResult, error) {
	if cfg.Workers <= 0 || cfg.Rounds <= 0 {
		return herdResult{}, fmt.Errorf("need positive herd workers and rounds")
	}
	// Stale-while-revalidate geometry: fresh for 50ms, then stale for a
	// minute — phase 2 crosses the freshness deadline by sleeping, which on
	// a loaded CI machine only ever makes the key *more* stale.
	cache, err := stemcache.New[string, []byte](stemcache.Config{
		Capacity: cfg.Capacity,
		Seed:     cfg.Seed,
		LoadTTL:  50 * time.Millisecond,
		StaleTTL: time.Minute,
	})
	if err != nil {
		return herdResult{}, err
	}
	defer cache.Close()
	srv, err := server.New(cache, server.Config{LeaseWait: 30 * time.Second})
	if err != nil {
		return herdResult{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return herdResult{}, err
	}
	defer srv.Close()

	clients := make([]*client.Client, cfg.Workers)
	for i := range clients {
		cl, err := client.New(client.Config{Addr: srv.Addr(), PoolSize: 1})
		if err != nil {
			return herdResult{}, err
		}
		defer cl.Close()
		clients[i] = cl
	}

	var res herdResult
	res.Workers, res.Rounds = cfg.Workers, cfg.Rounds

	// Phase 1: cold-key stampedes. A distinct key per round keeps the
	// arithmetic exact: every round is a guaranteed miss, so a perfect
	// lease costs exactly one origin fetch per round.
	var originCalls atomic.Int64
	payload := []byte("origin-payload")
	origin := func(ctx context.Context, key string) ([]byte, error) {
		originCalls.Add(1)
		time.Sleep(cfg.OriginDelay)
		return payload, nil
	}
	t0 := wallClock()
	for r := 0; r < cfg.Rounds; r++ {
		key := fmt.Sprintf("herd:%d", r)
		var wg sync.WaitGroup
		errC := make(chan error, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(cl *client.Client) {
				defer wg.Done()
				v, err := cl.GetOrLoad(context.Background(), key, origin)
				if err != nil {
					errC <- err
				} else if string(v) != string(payload) {
					errC <- fmt.Errorf("key %s: got %q", key, v)
				}
			}(clients[w])
		}
		wg.Wait()
		close(errC)
		for err := range errC {
			return res, err
		}
	}
	res.Seconds = wallClock().Sub(t0).Seconds()
	res.OriginCalls = originCalls.Load()
	res.Amplification = float64(res.OriginCalls) / float64(cfg.Rounds)

	// Phase 2: stale-while-revalidate. The hot key goes stale; the origin
	// is gated shut. Every worker returning at all proves its foreground
	// path never fetched — a foreground fetch would block on the gate.
	gate := make(chan struct{})
	var gateClosed atomic.Bool
	gateClosed.Store(true)
	var foreground atomic.Int64
	swrOrigin := func(ctx context.Context, key string) ([]byte, error) {
		if gateClosed.Load() {
			foreground.Add(1) // provisional: the elected refresher deducts itself below
		}
		<-gate
		return payload, nil
	}
	warm := func(ctx context.Context, key string) ([]byte, error) { return payload, nil }
	if _, err := clients[0].GetOrLoad(context.Background(), "swr:hot", warm); err != nil {
		return res, err
	}
	time.Sleep(80 * time.Millisecond) // cross the 50ms freshness deadline

	var wg sync.WaitGroup
	errC := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(cl *client.Client) {
			defer wg.Done()
			v, err := cl.GetOrLoad(context.Background(), "swr:hot", swrOrigin)
			if err != nil {
				errC <- err
			} else if string(v) != string(payload) {
				errC <- fmt.Errorf("stale read: got %q", v)
			}
		}(clients[w])
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		return res, err
	}
	res.StaleReturns = cfg.Workers
	// Exactly one background refresher is allowed to be parked on the gate;
	// anything beyond that was a foreground fetch.
	res.StaleForegroundCalls = max(foreground.Load()-1, 0)
	gateClosed.Store(false)
	close(gate) // release the refresher so client Close does not hang

	raw, err := clients[0].Stats()
	if err != nil {
		return res, err
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return res, err
	}
	res.Loads = snap.Loads
	res.LoadDedup = snap.LoadDedup
	res.StaleServed = snap.Cache.StaleServed
	return res, nil
}

package main

// The multi-tenant capacity-arbitration scenario (-tenants): the STEM
// giver/taker idea lifted to tenant granularity, measured end to end. Three
// namespaces with deliberately mismatched demand share one self-hosted
// server:
//
//   - hot:   zipf-skewed traffic whose working set is larger than its fair
//     share — shadow-hit demand makes it the taker.
//   - scan:  a sweep wider than anything the cache could keep — near-zero
//     shadow-hit demand makes it the giver.
//   - quiet: a small, low-traffic working set behind a min-reserve — the
//     tenant a free-for-all would evict.
//
// The identical interleaved key stream (workloads.NewTenantKeyStream is
// deterministic and partition-stable) replays against three fresh servers,
// one per capacity policy — arbitrated, static partition, observe
// (free-for-all) — with arbitration epochs driven by operation count so a
// run is reproducible. Per policy the scenario reports aggregate server hit
// rate, per-tenant hit rates, and Jain fairness over the active tenants; the
// paper-shaped claim, pinned by the e2e test, is
//
//	aggregate(arbitrated) >= aggregate(static)   // slack goes to the taker
//	jain(arbitrated)      >= jain(observe)       // the reserve holds
//
// i.e. arbitration beats the static partition on throughput without giving
// up the fairness a free-for-all loses.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stemcache"
	"repro/internal/tenant"
	"repro/internal/workloads"
)

// tenantLoadConfig shapes one -tenants run.
type tenantLoadConfig struct {
	// Ops is the total operation count replayed against each policy's server.
	Ops int `json:"ops"`
	// Capacity and Seed shape each self-hosted server's cache; Capacity also
	// scales the tenants' working sets and quiet's min-reserve.
	Capacity int    `json:"capacity"`
	Seed     uint64 `json:"seed"`
	// ValueSize is the payload written on a cache-aside miss.
	ValueSize int `json:"value_size"`
	// EpochOps is the arbitration cadence: one ArbitrateTenants epoch per
	// this many operations. Op-driven epochs keep the run deterministic —
	// wall time never decides when capacity moves.
	EpochOps int `json:"epoch_ops"`
}

// tenantPolicyResult is one policy's measured outcome.
type tenantPolicyResult struct {
	// Policy is the capacity-management mode: "arbitrated", "static" or
	// "observe" (free-for-all).
	Policy string `json:"policy"`
	// AggregateHitRate is the server's overall Gets-hit fraction from STATS.
	AggregateHitRate float64 `json:"aggregate_hit_rate"`
	// Jain is Jain's fairness index over the active tenants' hit rates
	// (1 = perfectly even, 1/n = one tenant has everything).
	Jain    float64 `json:"jain_fairness"`
	Seconds float64 `json:"seconds"`
	// Tenants holds every tenant's accounting row from the server's STATS
	// document, id order (row 0 is the idle default namespace).
	Tenants []stemcache.TenantStats `json:"tenants"`
}

// tenantReport is the BENCH_tenant.json document.
type tenantReport struct {
	Bench   string               `json:"bench"`
	Config  tenantLoadConfig     `json:"config"`
	Results []tenantPolicyResult `json:"results"`
	// The two deltas the e2e test pins: arbitration's aggregate hit rate
	// over the static partition's, and its fairness over the free-for-all's.
	HitRateVsStatic float64 `json:"arbitrated_minus_static_hit_rate"`
	JainVsObserve   float64 `json:"arbitrated_minus_observe_jain"`
}

// tenantRegistry builds the scenario's tenant policy table. The default
// tenant gets a token weight: every request in this scenario is namespaced,
// so its share should round toward nothing instead of idling a quarter of
// the cache. quiet's min-reserve is the receiving constraint under test —
// capacity arbitration may never shrink it below cap/16.
func tenantRegistry(capacity int) (*tenant.Registry, error) {
	reg := tenant.NewRegistry(tenant.Config{Weight: 0.1})
	for _, tc := range []tenant.Config{
		{Name: "hot", Weight: 1},
		{Name: "scan", Weight: 1},
		{Name: "quiet", Weight: 1, MinReserve: capacity / 16},
	} {
		if _, err := reg.Register(tc); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// tenantStreams is the scenario's workload: hot dominates traffic and wants
// more than its share, scan sweeps uselessly, quiet barely speaks.
func tenantStreams(cfg tenantLoadConfig) []workloads.TenantStream {
	return []workloads.TenantStream{
		{Name: "hot", Dist: "zipf", Capacity: cfg.Capacity / 2, Skew: 1.1, Weight: 8, Seed: cfg.Seed + 1},
		{Name: "scan", Dist: "scan", Capacity: cfg.Capacity * 2, Weight: 4, Seed: cfg.Seed + 2},
		{Name: "quiet", Dist: "zipf", Capacity: max(cfg.Capacity/64, 1), Skew: 1.2, Weight: 0.25, Seed: cfg.Seed + 3},
	}
}

// runTenants executes the three-policy comparison and writes the report.
func runTenants(cfg tenantLoadConfig, jsonPath string) error {
	results, err := tenantScenario(cfg)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("policy        %s\n", r.Policy)
		fmt.Printf("aggregate     %.4f server hit rate  jain %.4f  (%.2fs)\n",
			r.AggregateHitRate, r.Jain, r.Seconds)
		for _, ts := range r.Tenants {
			if ts.Gets == 0 {
				continue
			}
			fmt.Printf("  %-8s    %.4f hit  %d gets  %d shadow hits  %d live / %d target\n",
				ts.Name, ts.HitRate(), ts.Gets, ts.ShadowHits, ts.Live, ts.Target)
		}
		fmt.Println()
	}
	doc := tenantReport{Bench: "stemload-tenants", Config: cfg, Results: results}
	for _, r := range results {
		switch r.Policy {
		case "arbitrated":
			doc.HitRateVsStatic += r.AggregateHitRate
			doc.JainVsObserve += r.Jain
		case "static":
			doc.HitRateVsStatic -= r.AggregateHitRate
		case "observe":
			doc.JainVsObserve -= r.Jain
		}
	}
	fmt.Printf("arbitrated - static aggregate hit rate: %+.4f (want >= 0)\n", doc.HitRateVsStatic)
	fmt.Printf("arbitrated - observe jain fairness:     %+.4f (want >= 0)\n", doc.JainVsObserve)

	if jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// tenantScenario replays the identical workload against one fresh server per
// policy, sequentially so the policies never contend for the machine.
func tenantScenario(cfg tenantLoadConfig) ([]tenantPolicyResult, error) {
	if cfg.Ops <= 0 || cfg.EpochOps <= 0 {
		return nil, fmt.Errorf("need positive -ops and -tenant-epoch-ops")
	}
	if cfg.Capacity < 64 {
		return nil, fmt.Errorf("-capacity %d is below the scenario's minimum 64", cfg.Capacity)
	}
	policies := []stemcache.TenantPolicy{
		stemcache.TenantArbitrated, stemcache.TenantStatic, stemcache.TenantObserve,
	}
	results := make([]tenantPolicyResult, 0, len(policies))
	for _, p := range policies {
		res, err := tenantPolicyRun(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// tenantPolicyRun drives the full workload against a fresh self-hosted
// server under one capacity policy. One sequential driver and one client per
// namespace: the interleaved stream already models concurrency of tenants,
// and a single in-flight request keeps the replay exactly reproducible.
func tenantPolicyRun(policy stemcache.TenantPolicy, cfg tenantLoadConfig) (tenantPolicyResult, error) {
	reg, err := tenantRegistry(cfg.Capacity)
	if err != nil {
		return tenantPolicyResult{}, err
	}
	cache, err := stemcache.New[string, []byte](stemcache.Config{
		Capacity:     cfg.Capacity,
		Seed:         cfg.Seed,
		Tenants:      reg,
		TenantPolicy: policy,
	})
	if err != nil {
		return tenantPolicyResult{}, err
	}
	defer cache.Close()
	srv, err := server.New(cache, server.Config{})
	if err != nil {
		return tenantPolicyResult{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return tenantPolicyResult{}, err
	}
	defer srv.Close()

	streams := tenantStreams(cfg)
	next, err := workloads.NewTenantKeyStream(streams, cfg.Seed)
	if err != nil {
		return tenantPolicyResult{}, err
	}
	clients := make(map[string]*client.Client, len(streams))
	for _, ts := range streams {
		cl, err := client.New(client.Config{Addr: srv.Addr(), Namespace: ts.Name, PoolSize: 1})
		if err != nil {
			return tenantPolicyResult{}, err
		}
		defer cl.Close()
		clients[ts.Name] = cl
	}

	// Epoch 0 before any traffic rebases every tenant's target to the static
	// weight-proportional split, so the static partition binds from the first
	// insert and arbitration starts from the same split it will then move.
	cache.ArbitrateTenants()

	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	t0 := wallClock()
	for i := 0; i < cfg.Ops; i++ {
		ns, key := next()
		cl := clients[ns]
		_, found, err := cl.Get(key)
		if err != nil {
			return tenantPolicyResult{}, err
		}
		if !found {
			if err := cl.Set(key, value); err != nil {
				return tenantPolicyResult{}, err
			}
		}
		if (i+1)%cfg.EpochOps == 0 {
			cache.ArbitrateTenants()
		}
	}
	seconds := wallClock().Sub(t0).Seconds()

	raw, err := clients[streams[0].Name].Stats()
	if err != nil {
		return tenantPolicyResult{}, err
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return tenantPolicyResult{}, fmt.Errorf("STATS payload: %w", err)
	}
	res := tenantPolicyResult{
		Policy:           policy.String(),
		AggregateHitRate: snap.HitRate,
		Jain:             tenantJain(snap.Tenants),
		Seconds:          seconds,
		Tenants:          snap.Tenants,
	}
	return res, nil
}

// tenantJain is Jain's fairness index over the hit rates of the tenants that
// saw traffic (idle tenants have no hit rate to be fair about).
func tenantJain(rows []stemcache.TenantStats) float64 {
	var rates []float64
	for _, ts := range rows {
		if ts.Gets > 0 {
			rates = append(rates, ts.HitRate())
		}
	}
	return tenant.Jain(rates)
}

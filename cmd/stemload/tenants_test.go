package main

import "testing"

// TestTenantArbitrationBeatsStaticPartition is the multi-tenant e2e claim,
// end to end over the wire: with three mismatched tenants (a capacity-starved
// zipf taker, a sweep giver, a reserve-protected quiet tenant) replaying an
// identical deterministic stream against one server per policy, STEM-driven
// arbitration must beat the static weight-proportional partition on aggregate
// hit rate — the reclaimed giver slack — while holding Jain fairness at or
// above the free-for-all's, because the quiet tenant's min-reserve holds.
// Margins are set well inside the ~+0.04 hit-rate and ~+0.01 Jain deltas the
// scenario measures across seeds at this geometry.
func TestTenantArbitrationBeatsStaticPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant scenario replays 3x60k ops over loopback")
	}
	cfg := tenantLoadConfig{
		Ops:       60_000,
		Capacity:  2048,
		ValueSize: 32,
		Seed:      0x57E4,
		EpochOps:  2_000,
	}
	results, err := tenantScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]tenantPolicyResult{}
	for _, r := range results {
		byPolicy[r.Policy] = r
	}
	arb, ok := byPolicy["arbitrated"]
	if !ok {
		t.Fatalf("no arbitrated result in %+v", results)
	}
	static, observe := byPolicy["static"], byPolicy["observe"]

	if d := arb.AggregateHitRate - static.AggregateHitRate; d < 0.02 {
		t.Errorf("arbitrated aggregate hit rate %.4f beats static %.4f by only %+.4f, want >= +0.02",
			arb.AggregateHitRate, static.AggregateHitRate, d)
	}
	if d := arb.Jain - observe.Jain; d < 0.005 {
		t.Errorf("arbitrated jain %.4f vs free-for-all %.4f: %+.4f, want >= +0.005",
			arb.Jain, observe.Jain, d)
	}

	// The mechanism, not just the outcome: arbitration actually moved
	// capacity (some tenant's target left the static split), targets still
	// sum to the cache capacity, and the reserve-protected tenant never
	// dropped below its min-reserve.
	staticTargets := map[string]int{}
	for _, ts := range static.Tenants {
		staticTargets[ts.Name] = ts.Target
	}
	moved, sum := false, 0
	for _, ts := range arb.Tenants {
		sum += ts.Target
		if ts.Target != staticTargets[ts.Name] {
			moved = true
		}
		if ts.Name == "quiet" && ts.Target < cfg.Capacity/16 {
			t.Errorf("quiet target %d fell below its min-reserve %d", ts.Target, cfg.Capacity/16)
		}
	}
	if !moved {
		t.Error("arbitration never moved a target off the static split")
	}
	if sum != cfg.Capacity {
		t.Errorf("arbitrated targets sum to %d, want capacity %d (conservation)", sum, cfg.Capacity)
	}

	// Every policy saw the identical stream: per-tenant get counts match.
	for _, ts := range arb.Tenants {
		for _, other := range []tenantPolicyResult{static, observe} {
			for _, os := range other.Tenants {
				if os.Name == ts.Name && os.Gets != ts.Gets {
					t.Errorf("tenant %q saw %d gets under %s but %d under arbitrated — streams diverged",
						ts.Name, os.Gets, other.Policy, ts.Gets)
				}
			}
		}
	}
}

// Command stemload is a load generator for stemd: N workers run a
// cache-aside loop (GET, on miss SET) against a server, drawing keys from
// one of the deterministic serving distributions in internal/workloads, and
// report throughput, client latency percentiles, and hit rates.
//
// Loop disciplines:
//
//   - Closed loop (default): each worker issues its next operation as soon
//     as the previous one completes. This measures service time under
//     self-limiting load, but hides queueing delay — when the server
//     stalls, the generator politely stops sending (coordinated omission).
//   - Open loop (-rate R): operations are scheduled by a Poisson arrival
//     process at R ops/s in aggregate, independent of completions, and
//     each operation's latency is measured from its *scheduled* send time.
//     A stalled server keeps accumulating scheduled arrivals, so the delay
//     its stall inflicted on every queued request lands in the histogram
//     instead of being silently omitted. Above saturation the open-loop
//     tail is therefore the honest one: expect p99(open) ≥ p99(closed).
//
// Latencies are recorded in mergeable log-linear histograms (~3% relative
// error), not sample arrays, so -ops can grow without memory growing.
//
// Target modes:
//
//   - With -addr, stemload drives an existing server and reports its
//     numbers.
//   - With -cluster, stemload drives a whole ring of servers (comma-separated
//     addresses, e.g. the set stemcluster prints) through the consistent-hash
//     routing client and reports aggregate plus per-node numbers. -seed and
//     -vnodes must match the cluster's.
//   - Without either: self-hosted comparisons. Plain, it runs the STEM vs
//     sharded-LRU hit-rate comparison the paper is about. With -rate it
//     instead runs the coordinated-omission experiment: one STEM server,
//     a closed-loop pass then an open-loop pass at -rate, both reported
//     side by side (the BENCH_latency.json document).
//
// With -trace-every N, every N-th request carries a wire trace extension
// and the report includes the server/network latency split measured from
// the echoed server timings.
//
// Usage:
//
//	stemload                              # self-hosted STEM vs LRU, mixed keys
//	stemload -dist scan -ops 500000
//	stemload -dist hotspot-shift          # migrating hot set (the cluster workload)
//	stemload -addr :7070 -conns 16
//	stemload -addr :7070 -rate 50000      # open loop at 50k ops/s
//	stemload -rate 200000 -json BENCH_latency.json   # closed vs open, one server
//	stemload -cluster 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 -seed 21
//	stemload -json BENCH_serving.json     # machine-readable trajectory point
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stemcache"
	"repro/internal/workloads"
)

// wallClock is the package's single wall-clock read: stemload measures real
// elapsed time and latency.
var wallClock = time.Now //lint:allow(determinism) a load generator measures wall time by definition; nothing seed-deterministic reads this

func main() {
	var (
		addr      = flag.String("addr", "", "server to drive; empty self-hosts a STEM vs sharded-LRU comparison")
		clusterEP = flag.String("cluster", "", "comma-separated node addresses; drives the ring through the cluster routing client")
		vnodes    = flag.Int("vnodes", 0, "with -cluster: ring slots per node (0 = the cluster default)")
		dist      = flag.String("dist", "mixed", "key distribution: zipf, scan, mixed, or hotspot-shift")
		ops       = flag.Int("ops", 400_000, "total operations per engine")
		conns     = flag.Int("conns", 4, "concurrent closed-loop workers (one connection each)")
		capacity  = flag.Int("capacity", 1<<13, "cache capacity in entries (self-hosted servers; also scales the keyspace)")
		valueSize = flag.Int("value-size", 128, "value payload bytes")
		seed      = flag.Uint64("seed", 0x57E4, "key stream seed (worker w draws from seed+w)")
		rate      = flag.Float64("rate", 0, "open-loop Poisson arrival rate, total ops/s (0 = closed loop)")
		traceEach = flag.Int("trace-every", 0, "trace every Nth request end to end (0 = off)")
		jsonPath  = flag.String("json", "", `write results as JSON to this file ("-" for stdout)`)

		herd        = flag.Bool("herd", false, "run the thundering-herd read-through scenario instead of the cache-aside load (self-hosted; see herd.go)")
		herdWorkers = flag.Int("herd-workers", 64, "with -herd: concurrent clients stampeding each key")
		herdRounds  = flag.Int("herd-rounds", 20, "with -herd: number of cold keys stampeded in turn")
		originDelay = flag.Duration("origin-delay", 20*time.Millisecond, "with -herd: fake origin service time")

		tenants   = flag.Bool("tenants", false, "run the multi-tenant capacity-arbitration scenario: three namespaces, one server per policy (self-hosted; see tenants.go)")
		tenantOps = flag.Int("tenant-epoch-ops", 4096, "with -tenants: operations between arbitration epochs")

		membershipRun = flag.Bool("membership", false, "run the kill-a-node and scale-out membership scenarios (self-hosted; see membership.go); with -json merges into an existing cluster bench document")
		memNodes      = flag.Int("member-nodes", 3, "with -membership: starting cluster size")
		replication   = flag.Int("replication", 2, "with -membership: copies per slot including the owner")
		memKeys       = flag.Int("member-keys", 400, "with -membership: acked writes each scenario replays")
	)
	flag.Parse()

	if *membershipRun {
		if *addr != "" || *clusterEP != "" || *herd || *tenants {
			fmt.Fprintln(os.Stderr, "stemload: -membership is self-hosted; it excludes -addr, -cluster, -herd and -tenants")
			os.Exit(1)
		}
		if err := runMembership(memLoadConfig{
			Nodes: *memNodes, ReplicationFactor: *replication,
			VNodes: *vnodes, Keys: *memKeys, Capacity: *capacity, Seed: *seed,
		}, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "stemload:", err)
			os.Exit(1)
		}
		return
	}

	if *tenants {
		if *addr != "" || *clusterEP != "" || *herd {
			fmt.Fprintln(os.Stderr, "stemload: -tenants is self-hosted; it excludes -addr, -cluster and -herd")
			os.Exit(1)
		}
		if err := runTenants(tenantLoadConfig{
			Ops: *ops, Capacity: *capacity, Seed: *seed,
			ValueSize: *valueSize, EpochOps: *tenantOps,
		}, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "stemload:", err)
			os.Exit(1)
		}
		return
	}

	if *herd {
		if *addr != "" || *clusterEP != "" {
			fmt.Fprintln(os.Stderr, "stemload: -herd is self-hosted; it excludes -addr and -cluster")
			os.Exit(1)
		}
		if err := runHerd(herdConfig{
			Workers: *herdWorkers, Rounds: *herdRounds, OriginDelay: *originDelay,
			Capacity: *capacity, Seed: *seed,
		}, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "stemload:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*addr, *clusterEP, loadConfig{
		Dist: *dist, Ops: *ops, Conns: *conns, Capacity: *capacity,
		ValueSize: *valueSize, Seed: *seed, VNodes: *vnodes,
		Rate: *rate, TraceEvery: *traceEach,
	}, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "stemload:", err)
		os.Exit(1)
	}
}

// loadConfig shapes one engine's load run.
type loadConfig struct {
	Dist      string `json:"dist"`
	Ops       int    `json:"ops"`
	Conns     int    `json:"conns"`
	Capacity  int    `json:"capacity"`
	ValueSize int    `json:"value_size"`
	Seed      uint64 `json:"seed"`
	// VNodes applies to -cluster runs only (0 = the cluster default).
	VNodes int `json:"vnodes,omitempty"`
	// Rate > 0 selects the open loop: Poisson arrivals at Rate ops/s in
	// aggregate, latency measured from the scheduled send time.
	Rate float64 `json:"rate,omitempty"`
	// TraceEvery > 0 traces every Nth request end to end.
	TraceEvery int `json:"trace_every,omitempty"`
}

// result is one engine's measured outcome — the BENCH_*.json trajectory
// point schema.
type result struct {
	Engine string `json:"engine"`
	// Mode is the loop discipline that produced the numbers: "closed" or
	// "open" (see the package comment for why their tails differ).
	Mode          string  `json:"mode"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	LatP50Micros  float64 `json:"lat_p50_us"`
	LatP90Micros  float64 `json:"lat_p90_us"`
	LatP99Micros  float64 `json:"lat_p99_us"`
	LatP999Micros float64 `json:"lat_p999_us"`
	LatMeanMicros float64 `json:"lat_mean_us"`
	LatMaxMicros  float64 `json:"lat_max_us"`
	// TraceSamples and the p99 split appear when -trace-every sampled at
	// least one operation: ServerP99Micros is queue+handle on the server's
	// clock, NetP99Micros is everything else (wire, kernel, scheduling).
	TraceSamples    uint64  `json:"trace_samples,omitempty"`
	ServerP99Micros float64 `json:"server_p99_us,omitempty"`
	NetP99Micros    float64 `json:"net_p99_us,omitempty"`
	ClientHitRate   float64 `json:"client_hit_rate"`
	// ServerHitRate is the cache's own Gets-hit fraction from STATS — the
	// number the STEM-vs-LRU comparison is about.
	ServerHitRate float64 `json:"server_hit_rate"`
	// Server is the full server-side STATS document (cache mechanism
	// counters included), for trajectory archaeology.
	Server server.StatsSnapshot `json:"server,omitzero"`
	// Nodes holds every node's STATS document on -cluster runs (Server is
	// then the zero value; ServerHitRate aggregates across nodes).
	Nodes []server.StatsSnapshot `json:"nodes,omitempty"`
}

// report is the overall JSON document.
type report struct {
	Bench   string     `json:"bench"`
	Config  loadConfig `json:"config"`
	Results []result   `json:"results"`
}

func run(addr, clusterEP string, cfg loadConfig, jsonPath string) error {
	if cfg.Ops <= 0 || cfg.Conns <= 0 {
		return fmt.Errorf("need positive -ops and -conns")
	}
	if addr != "" && clusterEP != "" {
		return fmt.Errorf("-addr and -cluster are mutually exclusive")
	}
	var results []result
	switch {
	case clusterEP != "":
		res, err := driveCluster(strings.Split(clusterEP, ","), cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	case addr != "":
		res, err := drive("remote", addr, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	case cfg.Rate > 0:
		// Self-hosted coordinated-omission experiment: one STEM server, a
		// closed-loop pass to establish the self-limited baseline, then the
		// open-loop pass at -rate over the same (now warm) server.
		var err error
		if results, err = latencyComparison(cfg); err != nil {
			return err
		}
	default:
		// Self-hosted comparison: identical geometry, identical key streams,
		// driven sequentially so the engines never contend for the machine.
		for _, eng := range []string{"stem", "lru"} {
			res, err := selfHost(eng, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", eng, err)
			}
			results = append(results, res)
		}
	}

	for _, r := range results {
		printResult(r, cfg)
	}
	if len(results) == 2 && results[0].Engine == "stem" && results[1].Engine == "lru" {
		d := results[0].ServerHitRate - results[1].ServerHitRate
		fmt.Printf("STEM - LRU server hit rate: %+.4f\n", d)
	}
	if len(results) == 2 && results[0].Mode == "closed" && results[1].Mode == "open" {
		fmt.Printf("open - closed p99: %+.1fus (open loop charges queueing delay the closed loop omits)\n",
			results[1].LatP99Micros-results[0].LatP99Micros)
	}

	if jsonPath != "" {
		doc := report{Bench: "stemload", Config: cfg, Results: results}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// printResult renders one engine's numbers, including the instantaneous
// set-role gauges (taker/giver/coupled) the STATS extension exports.
func printResult(r result, cfg loadConfig) {
	fmt.Printf("engine        %s  (%s loop)\n", r.Engine, r.Mode)
	fmt.Printf("ops           %d in %.2fs  (%.0f ops/s, %d workers, %s keys)\n",
		cfg.Ops, r.Seconds, r.OpsPerSec, cfg.Conns, cfg.Dist)
	fmt.Printf("latency       p50 %.1fus  p90 %.1fus  p99 %.1fus  p99.9 %.1fus  mean %.1fus  max %.1fus\n",
		r.LatP50Micros, r.LatP90Micros, r.LatP99Micros, r.LatP999Micros, r.LatMeanMicros, r.LatMaxMicros)
	if r.TraceSamples > 0 {
		fmt.Printf("trace split   %d samples  server p99 %.1fus  net p99 %.1fus\n",
			r.TraceSamples, r.ServerP99Micros, r.NetP99Micros)
	}
	fmt.Printf("hit rate      %.4f client  %.4f server\n", r.ClientHitRate, r.ServerHitRate)
	if c := r.Server.Cache; c.Spills > 0 || c.PolicySwaps > 0 {
		fmt.Printf("mechanisms    %d spills  %d policy swaps  %d shadow hits\n",
			c.Spills, c.PolicySwaps, c.ShadowHits)
	}
	if len(r.Nodes) == 0 {
		if c := r.Server.Cache; c.Gets > 0 {
			fmt.Printf("set roles     %d taker  %d giver  %d coupled\n",
				c.TakerSets, c.GiverSets, c.CoupledSets)
		}
	}
	for _, n := range r.Nodes {
		fmt.Printf("node %-3d      %.4f hit  %d/%d entries  %d taker  %d giver  %d coupled sets\n",
			n.NodeID, n.HitRate, n.Len, n.Capacity,
			n.Cache.TakerSets, n.Cache.GiverSets, n.Cache.CoupledSets)
	}
	fmt.Println()
}

// selfHost runs one engine in-process and drives it over loopback.
func selfHost(engine string, cfg loadConfig) (result, error) {
	srv, err := startEngine(engine, cfg)
	if err != nil {
		return result{}, err
	}
	defer srv.stop()
	return drive(engine, srv.addr, cfg)
}

// latencyComparison is the coordinated-omission experiment: one STEM server
// serves a closed-loop pass and then an open-loop pass at cfg.Rate. The
// closed pass doubles as warm-up, so the open pass measures queueing against
// a steady-state cache rather than a cold one.
func latencyComparison(cfg loadConfig) ([]result, error) {
	srv, err := startEngine("stem", cfg)
	if err != nil {
		return nil, err
	}
	defer srv.stop()

	closedCfg := cfg
	closedCfg.Rate = 0
	closed, err := drive("stem", srv.addr, closedCfg)
	if err != nil {
		return nil, fmt.Errorf("closed pass: %w", err)
	}
	open, err := drive("stem", srv.addr, cfg)
	if err != nil {
		return nil, fmt.Errorf("open pass: %w", err)
	}
	return []result{closed, open}, nil
}

// hostedServer is one self-hosted engine: the loopback server plus the
// teardown for it and its cache.
type hostedServer struct {
	addr string
	stop func()
}

// startEngine builds the named engine's cache and serves it on loopback.
func startEngine(engine string, cfg loadConfig) (hostedServer, error) {
	ccfg := stemcache.Config{Capacity: cfg.Capacity, Seed: cfg.Seed}
	var cache *stemcache.Cache[string, []byte]
	var err error
	if engine == "lru" {
		cache, err = stemcache.NewShardedLRU[string, []byte](ccfg)
	} else {
		cache, err = stemcache.New[string, []byte](ccfg)
	}
	if err != nil {
		return hostedServer{}, err
	}
	srv, err := server.New(cache, server.Config{})
	if err != nil {
		cache.Close()
		return hostedServer{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		cache.Close()
		return hostedServer{}, err
	}
	return hostedServer{
		addr: srv.Addr(),
		stop: func() { srv.Close(); cache.Close() },
	}, nil
}

// kvStore is the client surface the worker loop needs — satisfied by both
// the single-node client and the cluster routing client.
type kvStore interface {
	Get(key string) (value []byte, found bool, err error)
	Set(key string, value []byte) error
}

// passOutcome is one load pass's merged measurement.
type passOutcome struct {
	hist    *obs.LatencyHistogram // GET latency, microseconds
	hits    int
	gets    int
	seconds float64
}

// runWorkers drives the cache-aside loop (GET, on miss SET) with cfg.Conns
// workers — closed loop, or open loop when cfg.Rate > 0 — and returns the
// merged outcome. Latency is per GET, in microseconds: completion minus
// issue time (closed) or completion minus *scheduled* arrival time (open),
// which is what makes the open loop coordinated-omission-safe.
func runWorkers(cl kvStore, cfg loadConfig) (passOutcome, error) {
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	perWorker := cfg.Ops / cfg.Conns
	// Per-worker Poisson thinning: the aggregate rate splits evenly, and
	// each worker draws its own exponential inter-arrival gaps from its own
	// seeded stream, so a run is reproducible for a fixed seed.
	perRate := cfg.Rate / float64(cfg.Conns)
	type workerOut struct {
		hist obs.LatencyHistogram
		hits int
		gets int
		err  error
	}
	outs := make([]workerOut, cfg.Conns)
	var wg sync.WaitGroup
	start := wallClock()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			next, err := workloads.NewWorkerKeyStream(cfg.Dist, cfg.Capacity, cfg.Seed+uint64(w), w, cfg.Conns)
			if err != nil {
				out.err = err
				return
			}
			var rng *sim.RNG
			var sched time.Duration // scheduled offset of the next arrival
			if perRate > 0 {
				rng = sim.NewRNG(cfg.Seed + uint64(w))
			}
			for i := 0; i < perWorker; i++ {
				k := next()
				issue := wallClock()
				if rng != nil {
					// Exponential inter-arrival gap: -ln(1-U)/λ. U < 1
					// always (Float64 is [0,1)), so the log is finite.
					gap := -math.Log(1-rng.Float64()) / perRate
					sched += time.Duration(gap * float64(time.Second))
					target := start.Add(sched)
					if d := target.Sub(issue); d > 0 {
						time.Sleep(d)
					}
					// Measure from the schedule, never from the (possibly
					// late) actual send: a backed-up worker charges its
					// backlog to the server, not to the omitted samples.
					issue = target
				}
				_, found, err := cl.Get(k)
				if lat := wallClock().Sub(issue).Microseconds(); lat > 0 {
					out.hist.Observe(uint64(lat))
				} else {
					out.hist.Observe(0)
				}
				out.gets++
				if err != nil {
					out.err = err
					return
				}
				if found {
					out.hits++
				} else if err := cl.Set(k, value); err != nil {
					out.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()

	pass := passOutcome{hist: &obs.LatencyHistogram{}, seconds: wallClock().Sub(start).Seconds()}
	for w := range outs {
		if outs[w].err != nil {
			return passOutcome{}, outs[w].err
		}
		pass.hist.Merge(&outs[w].hist)
		pass.hits += outs[w].hits
		pass.gets += outs[w].gets
	}
	return pass, nil
}

// buildResult folds one pass's outcome into the common result fields.
func buildResult(engine string, pass passOutcome, cfg loadConfig) result {
	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
	}
	h := pass.hist
	return result{
		Engine:        engine,
		Mode:          mode,
		Seconds:       pass.seconds,
		OpsPerSec:     float64(pass.gets) / pass.seconds,
		LatP50Micros:  float64(h.Quantile(0.50)),
		LatP90Micros:  float64(h.Quantile(0.90)),
		LatP99Micros:  float64(h.Quantile(0.99)),
		LatP999Micros: float64(h.Quantile(0.999)),
		LatMeanMicros: h.Mean(),
		LatMaxMicros:  float64(h.Max()),
		ClientHitRate: float64(pass.hits) / float64(max(pass.gets, 1)),
	}
}

// drive runs the workers against addr and gathers the result.
func drive(engine, addr string, cfg loadConfig) (result, error) {
	ccfg := client.Config{Addr: addr, PoolSize: cfg.Conns}
	var treg *obs.Registry
	if cfg.TraceEvery > 0 {
		treg = obs.NewRegistry()
		ccfg.TraceEvery = cfg.TraceEvery
		ccfg.Metrics = treg
	}
	cl, err := client.New(ccfg)
	if err != nil {
		return result{}, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return result{}, fmt.Errorf("server unreachable at %s: %w", addr, err)
	}

	pass, err := runWorkers(cl, cfg)
	if err != nil {
		return result{}, err
	}

	raw, err := cl.Stats()
	if err != nil {
		return result{}, err
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return result{}, fmt.Errorf("STATS payload: %w", err)
	}

	res := buildResult(engine, pass, cfg)
	res.ServerHitRate = snap.HitRate
	res.Server = snap
	attachTraceSplit(&res, treg)
	return res, nil
}

// attachTraceSplit copies the traced server/network p99 split out of the
// client's registry into the result, when tracing was on and sampled
// anything.
func attachTraceSplit(res *result, treg *obs.Registry) {
	if treg == nil {
		return
	}
	srvH := treg.Latency("client.lat.server_us")
	if srvH.Count() == 0 {
		return
	}
	res.TraceSamples = srvH.Count()
	res.ServerP99Micros = float64(srvH.Quantile(0.99))
	res.NetP99Micros = float64(treg.Latency("client.lat.net_us").Quantile(0.99))
}

// driveCluster runs the closed-loop workers through the consistent-hash
// routing client and aggregates every node's STATS.
func driveCluster(addrs []string, cfg loadConfig) (result, error) {
	nodeCfg := client.Config{PoolSize: cfg.Conns}
	var treg *obs.Registry
	if cfg.TraceEvery > 0 {
		// One registry shared by every node's client: the client.lat.*
		// histograms are atomic and mergeable, so per-node samples simply
		// aggregate into the cluster-wide split.
		treg = obs.NewRegistry()
		nodeCfg.TraceEvery = cfg.TraceEvery
		nodeCfg.Metrics = treg
	}
	cl, err := cluster.NewClient(cluster.Config{
		Addrs:  addrs,
		VNodes: cfg.VNodes,
		Seed:   cfg.Seed,
		Client: nodeCfg,
	})
	if err != nil {
		return result{}, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return result{}, fmt.Errorf("cluster unreachable: %w", err)
	}

	pass, err := runWorkers(cl, cfg)
	if err != nil {
		return result{}, err
	}

	raws, err := cl.StatsAll()
	if err != nil {
		return result{}, err
	}
	res := buildResult("cluster", pass, cfg)
	var srvHits, srvGets uint64
	res.Nodes = make([]server.StatsSnapshot, len(raws))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &res.Nodes[i]); err != nil {
			return result{}, fmt.Errorf("node %d STATS payload: %w", i, err)
		}
		srvHits += res.Nodes[i].Cache.Hits
		srvGets += res.Nodes[i].Cache.Gets
	}
	if srvGets > 0 {
		res.ServerHitRate = float64(srvHits) / float64(srvGets)
	}
	attachTraceSplit(&res, treg)
	return res, nil
}

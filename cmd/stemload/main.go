// Command stemload is a closed-loop load generator for stemd: N workers run
// a cache-aside loop (GET, on miss SET) against a server, drawing keys from
// one of the deterministic serving distributions in internal/workloads, and
// report throughput, client latency percentiles, and hit rates.
//
// Two modes:
//
//   - With -addr, stemload drives an existing server and reports its
//     numbers.
//   - Without -addr, stemload self-hosts the comparison the STEM paper is
//     about: it starts two in-process servers over the same geometry — one
//     STEM-managed, one the sharded-LRU baseline — drives both with
//     byte-identical key streams, and reports hit rates side by side. On the
//     "mixed" (zipf+scan) distribution the STEM engine's set-level BIP
//     dueling should win.
//
// Usage:
//
//	stemload                              # self-hosted STEM vs LRU, mixed keys
//	stemload -dist scan -ops 500000
//	stemload -addr :7070 -conns 16
//	stemload -json BENCH_serving.json     # machine-readable trajectory point
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stemcache"
	"repro/internal/workloads"
)

// wallClock is the package's single wall-clock read: stemload measures real
// elapsed time and latency.
var wallClock = time.Now //lint:allow(determinism) a load generator measures wall time by definition; nothing seed-deterministic reads this

func main() {
	var (
		addr      = flag.String("addr", "", "server to drive; empty self-hosts a STEM vs sharded-LRU comparison")
		dist      = flag.String("dist", "mixed", "key distribution: zipf, scan, or mixed")
		ops       = flag.Int("ops", 400_000, "total operations per engine")
		conns     = flag.Int("conns", 4, "concurrent closed-loop workers (one connection each)")
		capacity  = flag.Int("capacity", 1<<13, "cache capacity in entries (self-hosted servers; also scales the keyspace)")
		valueSize = flag.Int("value-size", 128, "value payload bytes")
		seed      = flag.Uint64("seed", 0x57E4, "key stream seed (worker w draws from seed+w)")
		jsonPath  = flag.String("json", "", `write results as JSON to this file ("-" for stdout)`)
	)
	flag.Parse()

	if err := run(*addr, loadConfig{
		Dist: *dist, Ops: *ops, Conns: *conns, Capacity: *capacity,
		ValueSize: *valueSize, Seed: *seed,
	}, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "stemload:", err)
		os.Exit(1)
	}
}

// loadConfig shapes one engine's load run.
type loadConfig struct {
	Dist      string `json:"dist"`
	Ops       int    `json:"ops"`
	Conns     int    `json:"conns"`
	Capacity  int    `json:"capacity"`
	ValueSize int    `json:"value_size"`
	Seed      uint64 `json:"seed"`
}

// result is one engine's measured outcome — the BENCH_*.json trajectory
// point schema.
type result struct {
	Engine        string  `json:"engine"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	LatP50Micros  float64 `json:"lat_p50_us"`
	LatP90Micros  float64 `json:"lat_p90_us"`
	LatP99Micros  float64 `json:"lat_p99_us"`
	ClientHitRate float64 `json:"client_hit_rate"`
	// ServerHitRate is the cache's own Gets-hit fraction from STATS — the
	// number the STEM-vs-LRU comparison is about.
	ServerHitRate float64 `json:"server_hit_rate"`
	// Server is the full server-side STATS document (cache mechanism
	// counters included), for trajectory archaeology.
	Server server.StatsSnapshot `json:"server"`
}

// report is the overall JSON document.
type report struct {
	Bench   string     `json:"bench"`
	Config  loadConfig `json:"config"`
	Results []result   `json:"results"`
}

func run(addr string, cfg loadConfig, jsonPath string) error {
	if cfg.Ops <= 0 || cfg.Conns <= 0 {
		return fmt.Errorf("need positive -ops and -conns")
	}
	var results []result
	if addr != "" {
		res, err := drive("remote", addr, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	} else {
		// Self-hosted comparison: identical geometry, identical key streams,
		// driven sequentially so the engines never contend for the machine.
		for _, eng := range []string{"stem", "lru"} {
			res, err := selfHost(eng, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", eng, err)
			}
			results = append(results, res)
		}
	}

	for _, r := range results {
		fmt.Printf("engine        %s\n", r.Engine)
		fmt.Printf("ops           %d in %.2fs  (%.0f ops/s, %d workers, %s keys)\n",
			cfg.Ops, r.Seconds, r.OpsPerSec, cfg.Conns, cfg.Dist)
		fmt.Printf("latency       p50 %.1fus  p90 %.1fus  p99 %.1fus\n",
			r.LatP50Micros, r.LatP90Micros, r.LatP99Micros)
		fmt.Printf("hit rate      %.4f client  %.4f server\n", r.ClientHitRate, r.ServerHitRate)
		if c := r.Server.Cache; c.Spills > 0 || c.PolicySwaps > 0 {
			fmt.Printf("mechanisms    %d spills  %d policy swaps  %d shadow hits\n",
				c.Spills, c.PolicySwaps, c.ShadowHits)
		}
		fmt.Println()
	}
	if len(results) == 2 {
		d := results[0].ServerHitRate - results[1].ServerHitRate
		fmt.Printf("STEM - LRU server hit rate: %+.4f\n", d)
	}

	if jsonPath != "" {
		doc := report{Bench: "stemload", Config: cfg, Results: results}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// selfHost runs one engine in-process and drives it over loopback.
func selfHost(engine string, cfg loadConfig) (result, error) {
	ccfg := stemcache.Config{Capacity: cfg.Capacity, Seed: cfg.Seed}
	var cache *stemcache.Cache[string, []byte]
	var err error
	if engine == "lru" {
		cache, err = stemcache.NewShardedLRU[string, []byte](ccfg)
	} else {
		cache, err = stemcache.New[string, []byte](ccfg)
	}
	if err != nil {
		return result{}, err
	}
	defer cache.Close()
	srv, err := server.New(cache, server.Config{})
	if err != nil {
		return result{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return result{}, err
	}
	defer srv.Close()
	return drive(engine, srv.Addr(), cfg)
}

// drive runs the closed-loop workers against addr and gathers the result.
func drive(engine, addr string, cfg loadConfig) (result, error) {
	cl, err := client.New(client.Config{Addr: addr, PoolSize: cfg.Conns})
	if err != nil {
		return result{}, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return result{}, fmt.Errorf("server unreachable at %s: %w", addr, err)
	}

	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	perWorker := cfg.Ops / cfg.Conns
	type workerOut struct {
		lats []float64 // microseconds per GET
		hits int
		err  error
	}
	outs := make([]workerOut, cfg.Conns)
	var wg sync.WaitGroup
	start := wallClock()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			next, err := workloads.NewWorkerKeyStream(cfg.Dist, cfg.Capacity, cfg.Seed+uint64(w), w, cfg.Conns)
			if err != nil {
				out.err = err
				return
			}
			out.lats = make([]float64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := next()
				t0 := wallClock()
				_, found, err := cl.Get(k)
				out.lats = append(out.lats, float64(wallClock().Sub(t0))/1e3)
				if err != nil {
					out.err = err
					return
				}
				if found {
					out.hits++
				} else if err := cl.Set(k, value); err != nil {
					out.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := wallClock().Sub(start).Seconds()

	var lats []float64
	hits, gets := 0, 0
	for w := range outs {
		if outs[w].err != nil {
			return result{}, outs[w].err
		}
		lats = append(lats, outs[w].lats...)
		hits += outs[w].hits
		gets += len(outs[w].lats)
	}
	sort.Float64s(lats)

	raw, err := cl.Stats()
	if err != nil {
		return result{}, err
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return result{}, fmt.Errorf("STATS payload: %w", err)
	}

	res := result{
		Engine:        engine,
		Seconds:       elapsed,
		OpsPerSec:     float64(gets) / elapsed,
		LatP50Micros:  percentile(lats, 0.50),
		LatP90Micros:  percentile(lats, 0.90),
		LatP99Micros:  percentile(lats, 0.99),
		ClientHitRate: float64(hits) / float64(max(gets, 1)),
		ServerHitRate: snap.HitRate,
		Server:        snap,
	}
	return res, nil
}

// percentile reads the p-quantile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Command stemload is a closed-loop load generator for stemd: N workers run
// a cache-aside loop (GET, on miss SET) against a server, drawing keys from
// one of the deterministic serving distributions in internal/workloads, and
// report throughput, client latency percentiles, and hit rates.
//
// Three modes:
//
//   - With -addr, stemload drives an existing server and reports its
//     numbers.
//   - With -cluster, stemload drives a whole ring of servers (comma-separated
//     addresses, e.g. the set stemcluster prints) through the consistent-hash
//     routing client and reports aggregate plus per-node numbers. -seed and
//     -vnodes must match the cluster's.
//   - Without either, stemload self-hosts the comparison the STEM paper is
//     about: it starts two in-process servers over the same geometry — one
//     STEM-managed, one the sharded-LRU baseline — drives both with
//     byte-identical key streams, and reports hit rates side by side. On the
//     "mixed" (zipf+scan) distribution the STEM engine's set-level BIP
//     dueling should win.
//
// Usage:
//
//	stemload                              # self-hosted STEM vs LRU, mixed keys
//	stemload -dist scan -ops 500000
//	stemload -dist hotspot-shift          # migrating hot set (the cluster workload)
//	stemload -addr :7070 -conns 16
//	stemload -cluster 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 -seed 21
//	stemload -json BENCH_serving.json     # machine-readable trajectory point
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/stemcache"
	"repro/internal/workloads"
)

// wallClock is the package's single wall-clock read: stemload measures real
// elapsed time and latency.
var wallClock = time.Now //lint:allow(determinism) a load generator measures wall time by definition; nothing seed-deterministic reads this

func main() {
	var (
		addr      = flag.String("addr", "", "server to drive; empty self-hosts a STEM vs sharded-LRU comparison")
		clusterEP = flag.String("cluster", "", "comma-separated node addresses; drives the ring through the cluster routing client")
		vnodes    = flag.Int("vnodes", 0, "with -cluster: ring slots per node (0 = the cluster default)")
		dist      = flag.String("dist", "mixed", "key distribution: zipf, scan, mixed, or hotspot-shift")
		ops       = flag.Int("ops", 400_000, "total operations per engine")
		conns     = flag.Int("conns", 4, "concurrent closed-loop workers (one connection each)")
		capacity  = flag.Int("capacity", 1<<13, "cache capacity in entries (self-hosted servers; also scales the keyspace)")
		valueSize = flag.Int("value-size", 128, "value payload bytes")
		seed      = flag.Uint64("seed", 0x57E4, "key stream seed (worker w draws from seed+w)")
		jsonPath  = flag.String("json", "", `write results as JSON to this file ("-" for stdout)`)
	)
	flag.Parse()

	if err := run(*addr, *clusterEP, loadConfig{
		Dist: *dist, Ops: *ops, Conns: *conns, Capacity: *capacity,
		ValueSize: *valueSize, Seed: *seed, VNodes: *vnodes,
	}, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "stemload:", err)
		os.Exit(1)
	}
}

// loadConfig shapes one engine's load run.
type loadConfig struct {
	Dist      string `json:"dist"`
	Ops       int    `json:"ops"`
	Conns     int    `json:"conns"`
	Capacity  int    `json:"capacity"`
	ValueSize int    `json:"value_size"`
	Seed      uint64 `json:"seed"`
	// VNodes applies to -cluster runs only (0 = the cluster default).
	VNodes int `json:"vnodes,omitempty"`
}

// result is one engine's measured outcome — the BENCH_*.json trajectory
// point schema.
type result struct {
	Engine        string  `json:"engine"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	LatP50Micros  float64 `json:"lat_p50_us"`
	LatP90Micros  float64 `json:"lat_p90_us"`
	LatP99Micros  float64 `json:"lat_p99_us"`
	ClientHitRate float64 `json:"client_hit_rate"`
	// ServerHitRate is the cache's own Gets-hit fraction from STATS — the
	// number the STEM-vs-LRU comparison is about.
	ServerHitRate float64 `json:"server_hit_rate"`
	// Server is the full server-side STATS document (cache mechanism
	// counters included), for trajectory archaeology.
	Server server.StatsSnapshot `json:"server,omitzero"`
	// Nodes holds every node's STATS document on -cluster runs (Server is
	// then the zero value; ServerHitRate aggregates across nodes).
	Nodes []server.StatsSnapshot `json:"nodes,omitempty"`
}

// report is the overall JSON document.
type report struct {
	Bench   string     `json:"bench"`
	Config  loadConfig `json:"config"`
	Results []result   `json:"results"`
}

func run(addr, clusterEP string, cfg loadConfig, jsonPath string) error {
	if cfg.Ops <= 0 || cfg.Conns <= 0 {
		return fmt.Errorf("need positive -ops and -conns")
	}
	if addr != "" && clusterEP != "" {
		return fmt.Errorf("-addr and -cluster are mutually exclusive")
	}
	var results []result
	switch {
	case clusterEP != "":
		res, err := driveCluster(strings.Split(clusterEP, ","), cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	case addr != "":
		res, err := drive("remote", addr, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	default:
		// Self-hosted comparison: identical geometry, identical key streams,
		// driven sequentially so the engines never contend for the machine.
		for _, eng := range []string{"stem", "lru"} {
			res, err := selfHost(eng, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", eng, err)
			}
			results = append(results, res)
		}
	}

	for _, r := range results {
		printResult(r, cfg)
	}
	if len(results) == 2 {
		d := results[0].ServerHitRate - results[1].ServerHitRate
		fmt.Printf("STEM - LRU server hit rate: %+.4f\n", d)
	}

	if jsonPath != "" {
		doc := report{Bench: "stemload", Config: cfg, Results: results}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(jsonPath, b, 0o644)
	}
	return nil
}

// printResult renders one engine's numbers, including the instantaneous
// set-role gauges (taker/giver/coupled) the STATS extension exports.
func printResult(r result, cfg loadConfig) {
	fmt.Printf("engine        %s\n", r.Engine)
	fmt.Printf("ops           %d in %.2fs  (%.0f ops/s, %d workers, %s keys)\n",
		cfg.Ops, r.Seconds, r.OpsPerSec, cfg.Conns, cfg.Dist)
	fmt.Printf("latency       p50 %.1fus  p90 %.1fus  p99 %.1fus\n",
		r.LatP50Micros, r.LatP90Micros, r.LatP99Micros)
	fmt.Printf("hit rate      %.4f client  %.4f server\n", r.ClientHitRate, r.ServerHitRate)
	if c := r.Server.Cache; c.Spills > 0 || c.PolicySwaps > 0 {
		fmt.Printf("mechanisms    %d spills  %d policy swaps  %d shadow hits\n",
			c.Spills, c.PolicySwaps, c.ShadowHits)
	}
	if len(r.Nodes) == 0 {
		if c := r.Server.Cache; c.Gets > 0 {
			fmt.Printf("set roles     %d taker  %d giver  %d coupled\n",
				c.TakerSets, c.GiverSets, c.CoupledSets)
		}
	}
	for _, n := range r.Nodes {
		fmt.Printf("node %-3d      %.4f hit  %d/%d entries  %d taker  %d giver  %d coupled sets\n",
			n.NodeID, n.HitRate, n.Len, n.Capacity,
			n.Cache.TakerSets, n.Cache.GiverSets, n.Cache.CoupledSets)
	}
	fmt.Println()
}

// selfHost runs one engine in-process and drives it over loopback.
func selfHost(engine string, cfg loadConfig) (result, error) {
	ccfg := stemcache.Config{Capacity: cfg.Capacity, Seed: cfg.Seed}
	var cache *stemcache.Cache[string, []byte]
	var err error
	if engine == "lru" {
		cache, err = stemcache.NewShardedLRU[string, []byte](ccfg)
	} else {
		cache, err = stemcache.New[string, []byte](ccfg)
	}
	if err != nil {
		return result{}, err
	}
	defer cache.Close()
	srv, err := server.New(cache, server.Config{})
	if err != nil {
		return result{}, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return result{}, err
	}
	defer srv.Close()
	return drive(engine, srv.Addr(), cfg)
}

// kvStore is the client surface the worker loop needs — satisfied by both
// the single-node client and the cluster routing client.
type kvStore interface {
	Get(key string) (value []byte, found bool, err error)
	Set(key string, value []byte) error
}

// runWorkers drives the closed cache-aside loop (GET, on miss SET) with
// cfg.Conns workers and returns the merged latency samples (sorted,
// microseconds), hit count, GET count, and wall time.
func runWorkers(cl kvStore, cfg loadConfig) (lats []float64, hits, gets int, seconds float64, err error) {
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	perWorker := cfg.Ops / cfg.Conns
	type workerOut struct {
		lats []float64 // microseconds per GET
		hits int
		err  error
	}
	outs := make([]workerOut, cfg.Conns)
	var wg sync.WaitGroup
	start := wallClock()
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			next, err := workloads.NewWorkerKeyStream(cfg.Dist, cfg.Capacity, cfg.Seed+uint64(w), w, cfg.Conns)
			if err != nil {
				out.err = err
				return
			}
			out.lats = make([]float64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := next()
				t0 := wallClock()
				_, found, err := cl.Get(k)
				out.lats = append(out.lats, float64(wallClock().Sub(t0))/1e3)
				if err != nil {
					out.err = err
					return
				}
				if found {
					out.hits++
				} else if err := cl.Set(k, value); err != nil {
					out.err = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seconds = wallClock().Sub(start).Seconds()

	for w := range outs {
		if outs[w].err != nil {
			return nil, 0, 0, 0, outs[w].err
		}
		lats = append(lats, outs[w].lats...)
		hits += outs[w].hits
		gets += len(outs[w].lats)
	}
	sort.Float64s(lats)
	return lats, hits, gets, seconds, nil
}

// buildResult folds the worker outcome into the common result fields.
func buildResult(engine string, lats []float64, hits, gets int, seconds float64) result {
	return result{
		Engine:        engine,
		Seconds:       seconds,
		OpsPerSec:     float64(gets) / seconds,
		LatP50Micros:  percentile(lats, 0.50),
		LatP90Micros:  percentile(lats, 0.90),
		LatP99Micros:  percentile(lats, 0.99),
		ClientHitRate: float64(hits) / float64(max(gets, 1)),
	}
}

// drive runs the closed-loop workers against addr and gathers the result.
func drive(engine, addr string, cfg loadConfig) (result, error) {
	cl, err := client.New(client.Config{Addr: addr, PoolSize: cfg.Conns})
	if err != nil {
		return result{}, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return result{}, fmt.Errorf("server unreachable at %s: %w", addr, err)
	}

	lats, hits, gets, seconds, err := runWorkers(cl, cfg)
	if err != nil {
		return result{}, err
	}

	raw, err := cl.Stats()
	if err != nil {
		return result{}, err
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return result{}, fmt.Errorf("STATS payload: %w", err)
	}

	res := buildResult(engine, lats, hits, gets, seconds)
	res.ServerHitRate = snap.HitRate
	res.Server = snap
	return res, nil
}

// driveCluster runs the closed-loop workers through the consistent-hash
// routing client and aggregates every node's STATS.
func driveCluster(addrs []string, cfg loadConfig) (result, error) {
	cl, err := cluster.NewClient(cluster.Config{
		Addrs:  addrs,
		VNodes: cfg.VNodes,
		Seed:   cfg.Seed,
		Client: client.Config{PoolSize: cfg.Conns},
	})
	if err != nil {
		return result{}, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return result{}, fmt.Errorf("cluster unreachable: %w", err)
	}

	lats, hits, gets, seconds, err := runWorkers(cl, cfg)
	if err != nil {
		return result{}, err
	}

	raws, err := cl.StatsAll()
	if err != nil {
		return result{}, err
	}
	res := buildResult("cluster", lats, hits, gets, seconds)
	var srvHits, srvGets uint64
	res.Nodes = make([]server.StatsSnapshot, len(raws))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &res.Nodes[i]); err != nil {
			return result{}, fmt.Errorf("node %d STATS payload: %w", i, err)
		}
		srvHits += res.Nodes[i].Cache.Hits
		srvGets += res.Nodes[i].Cache.Gets
	}
	if srvGets > 0 {
		res.ServerHitRate = float64(srvHits) / float64(srvGets)
	}
	return res, nil
}

// percentile reads the p-quantile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

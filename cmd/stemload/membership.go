package main

// The membership scenarios (-membership): the cluster's node-lifecycle
// claims measured end to end, as BENCH_cluster.json's `failover` and
// `scaleout` extensions.
//
//   - failover (kill a node): a 3-node cluster with replication factor 2
//     takes a full write load, loses one node mid-run, keeps acking writes
//     through the replica-retry path while the failure detector converges,
//     and then replays every acked key. The twin baseline run never loses a
//     node. The claims: zero lost acknowledged writes, and a post-failover
//     hit rate within 5 percentage points of the undisturbed run's —
//     synchronous replica fan-out means promotion is a pure ownership flip,
//     the data is already on the survivor.
//
//   - scaleout (add a node): a loaded 3-node cluster admits a fourth. The
//     claims: the handoff moves at most ⌈slots/nodes⌉ slots (bounded
//     movement — the ring's fixed slot points make a join a short sequence
//     of drain→copy→flip migrations, not a reshuffle), and the aggregate
//     hit rate recovers to at least the static 3-node baseline measured
//     just before the join.
//
// Both scenarios are self-hosted (loopback nodes, in-process manager and
// agents) and op-driven: the kill lands between write phases and failover
// is driven by explicit manager ticks, so a rerun with the same seed
// replays the same lifecycle.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/membership"
	"repro/internal/stemcache"
)

// memLoadConfig shapes one -membership run.
type memLoadConfig struct {
	// Nodes is the starting cluster size; scaleout joins one more.
	Nodes int `json:"nodes"`
	// ReplicationFactor is copies per slot including the owner.
	ReplicationFactor int `json:"replication_factor"`
	// VNodes is ring slots per starting node.
	VNodes int `json:"vnodes"`
	// Keys is the acked write count each scenario replays. Capacity
	// oversizes the per-node caches relative to it so nothing evicts: a
	// missing key measures replication, never cache pressure.
	Keys     int    `json:"keys"`
	Capacity int    `json:"capacity"`
	Seed     uint64 `json:"seed"`
}

func (c memLoadConfig) withDefaults() memLoadConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 4
	}
	if c.Keys <= 0 {
		c.Keys = 400
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Seed == 0 {
		c.Seed = 0x57E4
	}
	return c
}

// failoverResult is the kill-a-node scenario's measured outcome.
type failoverResult struct {
	// AckedWrites is every Set the cluster acknowledged, including the
	// batch written against the dead owner mid-failover; LostWrites is how
	// many of them the post-failover replay could not read back.
	AckedWrites int `json:"acked_writes"`
	LostWrites  int `json:"lost_writes"`
	// PromotedSlots is how many ownership flips the failover performed.
	PromotedSlots int `json:"promoted_slots"`
	// BaselineHitRate is the twin no-failure run's readback hit rate;
	// DeltaPP is baseline minus failover in percentage points (the
	// acceptance bound is 5).
	BaselineHitRate float64 `json:"baseline_hit_rate"`
	FailoverHitRate float64 `json:"failover_hit_rate"`
	DeltaPP         float64 `json:"hit_rate_delta_pp"`
	Seconds         float64 `json:"seconds"`
}

// scaleoutResult is the add-a-node scenario's measured outcome.
type scaleoutResult struct {
	// SlotsMoved is the join handoff's size; MoveBound is ⌈slots/nodes⌉
	// counting the joiner — bounded movement means SlotsMoved <= MoveBound.
	SlotsMoved int `json:"slots_moved"`
	MoveBound  int `json:"move_bound"`
	// StaticHitRate is measured on the 3-node ring just before the join,
	// ScaledHitRate on the 4-node ring just after; recovery means scaled
	// >= static. LostKeys is how many keys the migration dropped (want 0).
	StaticHitRate float64 `json:"static_hit_rate"`
	ScaledHitRate float64 `json:"scaled_hit_rate"`
	LostKeys      int     `json:"lost_keys"`
	Seconds       float64 `json:"seconds"`
}

// memRig is one self-hosted membership cluster: loopback nodes, one agent
// per node, the routing client, and a bootstrapped manager.
type memRig struct {
	cfg    memLoadConfig
	nodes  []*cluster.Node
	agents []*membership.Agent
	cl     *cluster.Client
	mgr    *membership.Manager
}

// memRigTpl fails fast so a dead node surfaces as one transient error, not
// a retry storm.
func memRigTpl() client.Config {
	return client.Config{
		Retries:     -1,
		DialTimeout: 500 * time.Millisecond,
		OpTimeout:   2 * time.Second,
	}
}

func startMemRig(cfg memLoadConfig) (*memRig, error) {
	rig := &memRig{cfg: cfg}
	addrs := make([]string, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := rig.startNode(i); err != nil {
			rig.close()
			return nil, err
		}
		addrs[i] = rig.nodes[i].Addr()
	}
	cl, err := cluster.NewClient(cluster.Config{
		Addrs: addrs, VNodes: cfg.VNodes, Seed: cfg.Seed,
		Client: memRigTpl(), DemandEvery: 16,
	})
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.cl = cl
	for i, node := range rig.nodes {
		rig.agents = append(rig.agents,
			membership.NewAgent(i, cl.Ring(), node.Server(), memRigTpl()))
	}
	mgr, err := membership.New(cl, rig.lister, addrs, membership.Config{
		ReplicationFactor: cfg.ReplicationFactor, SuspectAfter: 2,
	})
	if err != nil {
		rig.close()
		return nil, err
	}
	if _, err := mgr.Bootstrap(); err != nil {
		rig.close()
		return nil, err
	}
	rig.mgr = mgr
	return rig, nil
}

func (r *memRig) lister(n int) ([]string, error) { return r.nodes[n].Keys(), nil }

// startNode boots node id with an eviction-proof cache (see
// memLoadConfig.Keys) and appends it to the rig.
func (r *memRig) startNode(id int) (*cluster.Node, error) {
	node, err := cluster.StartNode(id, cluster.NodeConfig{
		Cache: stemcache.Config{
			Capacity: r.cfg.Capacity, Shards: 2, Ways: 8,
			Seed: cluster.NodeSeed(r.cfg.Seed, id),
		},
	})
	if err != nil {
		return nil, err
	}
	r.nodes = append(r.nodes, node)
	return node, nil
}

// join starts one more node plus its agent and hands it to the manager.
func (r *memRig) join() (membership.Report, error) {
	id := len(r.nodes)
	node, err := r.startNode(id)
	if err != nil {
		return membership.Report{}, err
	}
	r.agents = append(r.agents,
		membership.NewAgent(id, r.cl.Ring(), node.Server(), memRigTpl()))
	return r.mgr.Join(node.Addr())
}

func (r *memRig) close() {
	for _, a := range r.agents {
		a.Close()
	}
	if r.cl != nil {
		r.cl.Close()
	}
	for _, n := range r.nodes {
		n.Close()
	}
}

func memLoadKey(i int) string { return fmt.Sprintf("mem-%05d", i) }
func memLoadVal(i int) []byte { return []byte(fmt.Sprintf("val-%05d", i)) }
func ceilDivInt(a, b int) int { return (a + b - 1) / b }

// writeRange stores keys [lo, hi); every successful return is an ack the
// cluster must not lose.
func (r *memRig) writeRange(lo, hi int) (acked int, err error) {
	for i := lo; i < hi; i++ {
		if err := r.cl.Set(memLoadKey(i), memLoadVal(i)); err != nil {
			return acked, fmt.Errorf("set %q: %w", memLoadKey(i), err)
		}
		acked++
	}
	return acked, nil
}

// readRange replays keys [lo, hi) and returns the found count; a wrong
// value is an error, not a miss.
func (r *memRig) readRange(lo, hi int) (found int, err error) {
	for i := lo; i < hi; i++ {
		v, ok, err := r.cl.Get(memLoadKey(i))
		if err != nil {
			return found, fmt.Errorf("get %q: %w", memLoadKey(i), err)
		}
		if !ok {
			continue
		}
		if string(v) != string(memLoadVal(i)) {
			return found, fmt.Errorf("get %q returned %q, want %q", memLoadKey(i), v, memLoadVal(i))
		}
		found++
	}
	return found, nil
}

// failoverScenario runs the twin kill/no-kill comparison.
func failoverScenario(cfg memLoadConfig) (failoverResult, error) {
	var res failoverResult
	start := wallClock()

	// Baseline: same cluster, same writes, nobody dies.
	base, err := startMemRig(cfg)
	if err != nil {
		return res, err
	}
	if _, err := base.writeRange(0, cfg.Keys); err != nil {
		base.close()
		return res, err
	}
	baseFound, err := base.readRange(0, cfg.Keys)
	base.close()
	if err != nil {
		return res, err
	}
	res.BaselineHitRate = float64(baseFound) / float64(cfg.Keys)

	// The kill run: lose node 1 after the initial writes, keep writing a
	// quarter more against the dead owner (replica retry must ack them),
	// tick the detector until it fires, then replay everything.
	rig, err := startMemRig(cfg)
	if err != nil {
		return res, err
	}
	defer rig.close()
	acked, err := rig.writeRange(0, cfg.Keys)
	if err != nil {
		return res, err
	}
	if err := rig.nodes[1].Close(); err != nil {
		return res, err
	}
	more, err := rig.writeRange(cfg.Keys, cfg.Keys+cfg.Keys/4)
	if err != nil {
		return res, err
	}
	res.AckedWrites = acked + more
	for i := 0; i < 4 && res.PromotedSlots == 0; i++ {
		for _, rep := range rig.mgr.Tick() {
			res.PromotedSlots += len(rep.Moves)
		}
	}
	if res.PromotedSlots == 0 {
		return res, fmt.Errorf("failure detector never promoted the dead node's slots")
	}
	found, err := rig.readRange(0, res.AckedWrites)
	if err != nil {
		return res, err
	}
	res.LostWrites = res.AckedWrites - found
	res.FailoverHitRate = float64(found) / float64(res.AckedWrites)
	res.DeltaPP = (res.BaselineHitRate - res.FailoverHitRate) * 100
	res.Seconds = wallClock().Sub(start).Seconds()
	return res, nil
}

// scaleoutScenario measures the static baseline, joins a node, and
// measures again.
func scaleoutScenario(cfg memLoadConfig) (scaleoutResult, error) {
	var res scaleoutResult
	start := wallClock()
	rig, err := startMemRig(cfg)
	if err != nil {
		return res, err
	}
	defer rig.close()
	if _, err := rig.writeRange(0, cfg.Keys); err != nil {
		return res, err
	}
	staticFound, err := rig.readRange(0, cfg.Keys)
	if err != nil {
		return res, err
	}
	res.StaticHitRate = float64(staticFound) / float64(cfg.Keys)

	rep, err := rig.join()
	if err != nil {
		return res, err
	}
	res.SlotsMoved = len(rep.Moves)
	res.MoveBound = ceilDivInt(rig.cl.Ring().Slots(), cfg.Nodes+1)
	if res.SlotsMoved > res.MoveBound {
		return res, fmt.Errorf("join moved %d slots, bound %d", res.SlotsMoved, res.MoveBound)
	}
	scaledFound, err := rig.readRange(0, cfg.Keys)
	if err != nil {
		return res, err
	}
	res.ScaledHitRate = float64(scaledFound) / float64(cfg.Keys)
	res.LostKeys = cfg.Keys - scaledFound
	res.Seconds = wallClock().Sub(start).Seconds()
	return res, nil
}

// runMembership executes both scenarios and writes (or extends) the JSON
// report: when jsonPath already holds a JSON object — the `stemload
// -cluster` document — the scenarios are merged into it as `failover` and
// `scaleout`, so BENCH_cluster.json accumulates the full cluster story.
func runMembership(cfg memLoadConfig, jsonPath string) error {
	cfg = cfg.withDefaults()
	fo, err := failoverScenario(cfg)
	if err != nil {
		return fmt.Errorf("failover scenario: %w", err)
	}
	so, err := scaleoutScenario(cfg)
	if err != nil {
		return fmt.Errorf("scaleout scenario: %w", err)
	}

	fmt.Printf("failover      %d acked writes, %d lost, %d slots promoted (%.2fs)\n",
		fo.AckedWrites, fo.LostWrites, fo.PromotedSlots, fo.Seconds)
	fmt.Printf("  hit rate    baseline %.4f  post-failover %.4f  delta %+.2fpp (want <= 5)\n",
		fo.BaselineHitRate, fo.FailoverHitRate, fo.DeltaPP)
	fmt.Printf("scaleout      %d/%d slots moved, %d keys lost (%.2fs)\n",
		so.SlotsMoved, so.MoveBound, so.LostKeys, so.Seconds)
	fmt.Printf("  hit rate    static %.4f  scaled %.4f (want scaled >= static)\n",
		so.StaticHitRate, so.ScaledHitRate)

	if jsonPath == "" {
		return nil
	}
	doc := map[string]any{}
	if jsonPath != "-" {
		if b, err := os.ReadFile(jsonPath); err == nil {
			if err := json.Unmarshal(b, &doc); err != nil {
				doc = map[string]any{}
			}
		}
	}
	if _, ok := doc["bench"]; !ok {
		doc["bench"] = "stemload-membership"
	}
	doc["membership_config"] = cfg
	doc["failover"] = fo
	doc["scaleout"] = so
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(jsonPath, b, 0o644)
}

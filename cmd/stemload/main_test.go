package main

import (
	"encoding/json"
	"testing"
	"time"
)

// TestOpenLoopTailDominatesClosedLoop is the coordinated-omission claim,
// measured: against the same server, an open-loop pass scheduled far above
// the server's achievable throughput must report a p99 at least as large as
// the closed loop's, because every scheduled-but-delayed arrival charges its
// queueing delay to the histogram instead of being silently omitted.
func TestOpenLoopTailDominatesClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a loopback server for thousands of ops")
	}
	cfg := loadConfig{
		Dist:      "mixed",
		Ops:       8_000,
		Conns:     2,
		Capacity:  1 << 10,
		ValueSize: 64,
		Seed:      0x57E4,
		// Far above what a loopback round trip can sustain, so the open
		// pass is guaranteed to run saturated from the first arrivals.
		Rate:       5_000_000,
		TraceEvery: 8,
	}
	results, err := latencyComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("latencyComparison returned %d results, want 2", len(results))
	}
	closed, open := results[0], results[1]
	if closed.Mode != "closed" || open.Mode != "open" {
		t.Fatalf("modes = %q, %q; want closed, open", closed.Mode, open.Mode)
	}
	if open.LatP99Micros < closed.LatP99Micros {
		t.Errorf("open-loop p99 %.1fus < closed-loop p99 %.1fus: coordinated omission not charged",
			open.LatP99Micros, closed.LatP99Micros)
	}
	for _, r := range results {
		if r.Engine != "stem" {
			t.Errorf("engine %q, want stem", r.Engine)
		}
		if r.LatP50Micros > r.LatP99Micros || r.LatP99Micros > r.LatP999Micros {
			t.Errorf("%s: quantiles not monotone: p50 %.1f p99 %.1f p99.9 %.1f",
				r.Mode, r.LatP50Micros, r.LatP99Micros, r.LatP999Micros)
		}
		if r.LatMaxMicros < r.LatP999Micros {
			t.Errorf("%s: max %.1fus below p99.9 %.1fus", r.Mode, r.LatMaxMicros, r.LatP999Micros)
		}
		if r.TraceSamples == 0 {
			t.Errorf("%s: tracing every 8th op sampled nothing", r.Mode)
		}
		if r.OpsPerSec <= 0 || r.Seconds <= 0 {
			t.Errorf("%s: degenerate throughput %v ops/s over %vs", r.Mode, r.OpsPerSec, r.Seconds)
		}
	}

	// The report document must survive a marshal round trip with the mode
	// and the trace split intact — CI archives it as BENCH_latency.json.
	doc := report{Bench: "stemload", Config: cfg, Results: results}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[1].Mode != "open" || back.Results[1].TraceSamples == 0 {
		t.Errorf("report round trip lost fields: %+v", back.Results)
	}
}

// TestThunderingHerdAmplification is the read-through acceptance claim: 64
// workers stampeding one expiring hot key against a slow origin must cost
// one origin fetch per cold key — amplification pinned at 1.05, i.e. at
// most one duplicate fetch in twenty rounds — and the stale-while-revalidate
// phase must answer every worker from the stale value with zero origin
// calls on any foreground path. CI runs this under -race and emits the same
// scenario as BENCH_loader.json.
func TestThunderingHerdAmplification(t *testing.T) {
	if testing.Short() {
		t.Skip("drives 64 clients against a loopback server")
	}
	cfg := herdConfig{
		Workers:     64,
		Rounds:      20,
		OriginDelay: 20 * time.Millisecond,
		Capacity:    1 << 12,
		Seed:        0x57E4,
	}
	res, err := herdScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Amplification > 1.05 {
		t.Fatalf("origin amplification = %.3f (%d calls / %d rounds); want <= 1.05",
			res.Amplification, res.OriginCalls, cfg.Rounds)
	}
	if res.StaleForegroundCalls != 0 {
		t.Fatalf("stale foreground origin calls = %d; want 0 (SWR must keep the origin off the critical path)",
			res.StaleForegroundCalls)
	}
	if res.StaleReturns != cfg.Workers {
		t.Fatalf("stale returns = %d; want %d", res.StaleReturns, cfg.Workers)
	}
	if res.StaleServed == 0 {
		t.Fatal("server reported StaleServed = 0; the SWR phase never served stale")
	}
	if res.LoadDedup == 0 {
		t.Fatal("server reported LoadDedup = 0; the herd never shared a lease")
	}
}

package main

import "testing"

// TestMembershipFailoverScenario pins the kill-a-node acceptance claims on
// the scenario the bench ships: zero lost acknowledged writes through a
// mid-run node death, and a post-failover hit rate within 5 percentage
// points of the twin run that never loses a node.
func TestMembershipFailoverScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("membership scenario drives loopback clusters")
	}
	cfg := memLoadConfig{Keys: 200, Capacity: 4096, Seed: 33}.withDefaults()
	fo, err := failoverScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fo.LostWrites != 0 {
		t.Fatalf("failover lost %d of %d acked writes", fo.LostWrites, fo.AckedWrites)
	}
	if fo.PromotedSlots == 0 {
		t.Fatal("failover promoted no slots")
	}
	if fo.DeltaPP > 5 {
		t.Fatalf("post-failover hit rate %.4f is %.2fpp below baseline %.4f (bound 5)",
			fo.FailoverHitRate, fo.DeltaPP, fo.BaselineHitRate)
	}
}

// TestMembershipScaleoutScenario pins the scale-out claims: the join moves
// a bounded, non-empty slot set, drops no keys, and the aggregate hit rate
// recovers to at least the static baseline.
func TestMembershipScaleoutScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("membership scenario drives loopback clusters")
	}
	cfg := memLoadConfig{Keys: 200, Capacity: 4096, Seed: 33}.withDefaults()
	so, err := scaleoutScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if so.SlotsMoved == 0 || so.SlotsMoved > so.MoveBound {
		t.Fatalf("join moved %d slots, want 1..%d", so.SlotsMoved, so.MoveBound)
	}
	if so.LostKeys != 0 {
		t.Fatalf("scale-out lost %d keys", so.LostKeys)
	}
	if so.ScaledHitRate < so.StaticHitRate {
		t.Fatalf("scaled hit rate %.4f below static baseline %.4f",
			so.ScaledHitRate, so.StaticHitRate)
	}
}

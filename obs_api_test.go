package stem_test

// Exercises the observability surface exactly as README.md documents it:
// trace a Figure-2 run through the public API and reconcile the JSONL
// against the run's final stats.

import (
	"bytes"
	"testing"

	stem "repro"
)

func TestReadmeObservabilitySnippet(t *testing.T) {
	var buf bytes.Buffer
	tr := stem.NewJSONLTracer(&buf)
	cache, err := stem.NewScheme("STEM", stem.Figure2Geometry, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := stem.Run(cache, stem.Figure2Workload(2), stem.RunConfig{
		Geom: stem.Figure2Geometry, Warmup: 10_000, Measure: 100_000,
		Obs: &stem.ObsOptions{Tracer: tr},
	})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := stem.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}

	counts := map[stem.EventType]uint64{}
	var final *stem.Snapshot
	for i, e := range events {
		counts[e.Type]++
		if e.Type == stem.EvSnapshot && e.Snap != nil && e.Snap.Final {
			final = events[i].Snap
		}
	}
	if counts[stem.EvSpill] != res.Stats.Spills {
		t.Fatalf("trace spills %d != stats spills %d", counts[stem.EvSpill], res.Stats.Spills)
	}
	if counts[stem.EvCouple] != res.Stats.Couplings {
		t.Fatalf("trace couples %d != stats couplings %d", counts[stem.EvCouple], res.Stats.Couplings)
	}
	if final == nil {
		t.Fatal("no final snapshot in trace")
	}
	if final.Stats != res.Stats {
		t.Fatalf("final snapshot %+v != run stats %+v", final.Stats, res.Stats)
	}

	// Example #2 is the paper's extensional example: the overloaded set
	// must actually borrow capacity for the trace to be worth reading.
	// (The couple itself forms during warm-up, so only spills are
	// guaranteed measured activity.)
	if res.Stats.Spills == 0 {
		t.Fatalf("Figure-2 example 2 exercised no spilling: %+v", res.Stats)
	}

	// A metrics registry over the same run counts every access.
	reg := stem.NewRegistry()
	cache2, _ := stem.NewScheme("STEM", stem.Figure2Geometry, 1)
	res2 := stem.Run(cache2, stem.Figure2Workload(2), stem.RunConfig{
		Geom: stem.Figure2Geometry, Warmup: 10_000, Measure: 100_000,
		Obs: &stem.ObsOptions{Registry: reg},
	})
	if got := reg.Counter("run.accesses").Value(); got != res2.Stats.Accesses {
		t.Fatalf("run.accesses = %d, want %d", got, res2.Stats.Accesses)
	}
	if res2.Stats != res.Stats {
		t.Fatalf("observability sinks changed the run: %+v vs %+v", res2.Stats, res.Stats)
	}
}

package stem_test

import (
	"math"
	"strings"
	"testing"

	stem "repro"
)

var testGeom = stem.Geometry{Sets: 128, Ways: 16, LineSize: 64}

func TestSchemesList(t *testing.T) {
	s := stem.Schemes()
	want := []string{"LRU", "DIP", "PELIFO", "VWAY", "SBC", "STEM"}
	if len(s) != len(want) {
		t.Fatalf("Schemes() = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Schemes() = %v, want %v", s, want)
		}
	}
	// The returned slice is a copy: mutating it must not affect the API.
	s[0] = "corrupted"
	if stem.Schemes()[0] != "LRU" {
		t.Fatal("Schemes() exposes internal state")
	}
}

func TestPaperGeometryIs2MB(t *testing.T) {
	if stem.PaperGeometry.CapacityBytes() != 2<<20 {
		t.Fatalf("paper geometry capacity %d, want 2MB", stem.PaperGeometry.CapacityBytes())
	}
}

func TestEndToEndSTEMBeatsLRUOnClassI(t *testing.T) {
	// Integration: the omnetpp analog at 16 ways is STEM's showcase.
	cfg := stem.RunConfig{Geom: testGeom, Warmup: 60_000, Measure: 200_000}
	w := stem.MustBenchmark("omnetpp").Workload
	lru, err := stem.RunWorkload(w, "LRU", cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stem.RunWorkload(w, "STEM", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MPKI >= lru.MPKI*0.9 {
		t.Fatalf("STEM MPKI %v vs LRU %v: no clear Class I win", st.MPKI, lru.MPKI)
	}
	if st.AMAT >= lru.AMAT || st.CPI >= lru.CPI {
		t.Fatalf("STEM AMAT/CPI (%v/%v) not better than LRU (%v/%v)",
			st.AMAT, st.CPI, lru.AMAT, lru.CPI)
	}
	if st.Stats.Couplings == 0 || st.Stats.SecondaryHits == 0 {
		t.Fatalf("STEM never exercised cooperative caching: %+v", st.Stats)
	}
}

func TestEndToEndSTEMMatchesDIPOnClassII(t *testing.T) {
	cfg := stem.RunConfig{Geom: testGeom, Warmup: 60_000, Measure: 200_000}
	w := stem.MustBenchmark("cactusADM").Workload
	dip, err := stem.RunWorkload(w, "DIP", cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stem.RunWorkload(w, "STEM", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "STEM performs as well as DIP for the benchmarks of Class II" — allow
	// a modest band around parity.
	if st.MPKI > dip.MPKI*1.15 {
		t.Fatalf("STEM MPKI %v far above DIP %v on Class II", st.MPKI, dip.MPKI)
	}
	if st.Stats.PolicySwaps == 0 {
		t.Fatal("STEM never swapped per-set policies on a thrashing workload")
	}
}

func TestEndToEndNoHarmOnClassIII(t *testing.T) {
	cfg := stem.RunConfig{Geom: testGeom, Warmup: 60_000, Measure: 200_000}
	for _, name := range []string{"gobmk", "gromacs", "vpr"} {
		w := stem.MustBenchmark(name).Workload
		lru, err := stem.RunWorkload(w, "LRU", cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := stem.RunWorkload(w, "STEM", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.MPKI > lru.MPKI*1.03 {
			t.Errorf("%s: STEM MPKI %v worse than LRU %v on a Class III analog",
				name, st.MPKI, lru.MPKI)
		}
	}
}

func TestCustomCacheAndPolicy(t *testing.T) {
	// The extension point: assemble a cache from a custom per-set policy
	// (here the built-in NRU as a stand-in for user code).
	c := stem.NewCustomCache("NRU", testGeom, 1, func(set, ways int, rng *stem.RNG) stem.Policy {
		return stem.NewPolicy(stem.NRU, ways, rng)
	})
	gen := stem.NewGenerator(stem.MustBenchmark("gobmk").Workload, testGeom, 1)
	res := stem.Run(c, gen, stem.RunConfig{Geom: testGeom, Warmup: 30_000, Measure: 100_000})
	if res.MissRate <= 0 || res.MissRate >= 1 {
		t.Fatalf("custom cache degenerate miss rate %v", res.MissRate)
	}
	if c.Name() != "NRU" {
		t.Fatalf("custom cache name %q", c.Name())
	}
}

func TestFigure2PublicAPI(t *testing.T) {
	rows := stem.Figure2(0)
	if len(rows) != 3 {
		t.Fatalf("Figure2 rows = %d", len(rows))
	}
	gen := stem.Figure2Workload(1)
	r := gen.Next()
	if stem.Figure2Geometry.Index(r.Block) != 0 {
		t.Fatal("Figure 2 workload does not start in set 0")
	}
}

func TestTable3PublicAPI(t *testing.T) {
	r := stem.Table3()
	if math.Abs(r.OverheadFraction-0.031) > 0.002 {
		t.Fatalf("overhead %.4f, want ~0.031", r.OverheadFraction)
	}
	if r.ExtraBits() <= 0 {
		t.Fatal("no extra bits reported")
	}
	// A wider signature must cost more.
	wide := stem.Overhead(stem.PaperGeometry, stem.Config{SignatureBits: 16}, 44)
	if wide.OverheadFraction <= r.OverheadFraction {
		t.Fatal("wider signatures did not increase overhead")
	}
}

func TestDemandProfilerPublicAPI(t *testing.T) {
	p := stem.NewDemandProfiler(testGeom, 1000, 32)
	gen := stem.NewGenerator(stem.MustBenchmark("ammp").Workload, testGeom, 1)
	for i := 0; i < 5000; i++ {
		p.Feed(gen.Next().Block)
	}
	p.Flush()
	if len(p.Periods()) == 0 {
		t.Fatal("no sampling periods recorded")
	}
}

func TestAccountPublicAPI(t *testing.T) {
	a := stem.NewAccount(stem.DefaultTiming())
	a.Record(100, stem.Outcome{Hit: true})
	if a.MPKI() != 0 {
		t.Fatal("hit counted as miss")
	}
	a.Record(100, stem.Outcome{})
	if a.MPKI() != 5 { // 1 miss / 200 instr = 5 MPKI
		t.Fatalf("MPKI = %v, want 5", a.MPKI())
	}
}

func TestBenchmarkSuitePublicAPI(t *testing.T) {
	if len(stem.Benchmarks()) != 15 {
		t.Fatal("suite size wrong")
	}
	if _, err := stem.BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBenchmark did not panic on unknown name")
		}
	}()
	stem.MustBenchmark("nope")
}

func TestSweepPublicAPI(t *testing.T) {
	tbl, err := stem.Sweep(stem.SweepConfig{
		Benchmark: "gromacs",
		Schemes:   []string{"LRU"},
		Assocs:    []int{8},
		Run:       stem.RunConfig{Geom: testGeom, Warmup: 20_000, Measure: 50_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get("8", "LRU"); !ok {
		t.Fatal("sweep cell missing")
	}
}

func TestHierarchyPublicAPI(t *testing.T) {
	l2, err := stem.NewScheme("STEM", testGeom, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := stem.NewHierarchy(l2, stem.HierarchyConfig{})
	cpu := stem.NewCPULevel(stem.NewGenerator(stem.MustBenchmark("gobmk").Workload, testGeom, 1),
		testGeom.LineSize, 3)
	for i := 0; i < 30000; i++ {
		addr, write, instrs := cpu.NextByte()
		h.Data(addr, write, instrs)
	}
	if h.AMAT() <= 0 || h.CPI() <= 0 || h.MPKI() < 0 {
		t.Fatalf("hierarchy metrics AMAT=%v CPI=%v MPKI=%v", h.AMAT(), h.CPI(), h.MPKI())
	}
	st := h.Stats()
	if st.L1DAccesses != 30000 {
		t.Fatalf("L1D accesses %d", st.L1DAccesses)
	}
	if st.L1DMisses >= st.L1DAccesses/2 {
		t.Fatalf("L1 not filtering: %d misses of %d", st.L1DMisses, st.L1DAccesses)
	}
}

func TestOPTPublicAPI(t *testing.T) {
	// OPT lower-bounds LRU on a recorded trace.
	gen := stem.NewGenerator(stem.MustBenchmark("twolf").Workload, testGeom, 3)
	blocks := make([]uint64, 50000)
	lru, _ := stem.NewScheme("LRU", testGeom, 1)
	for i := range blocks {
		r := gen.Next()
		blocks[i] = r.Block
		lru.Access(stem.Access{Block: r.Block})
	}
	optStats := stem.OPTMisses(testGeom, blocks)
	if optStats.Misses > lru.Stats().Misses {
		t.Fatalf("OPT misses %d exceed LRU %d", optStats.Misses, lru.Stats().Misses)
	}
}

func TestAblatePublicAPI(t *testing.T) {
	tbl, err := stem.Ablate(stem.ComponentVariants(), []string{"omnetpp"},
		stem.RunConfig{Geom: testGeom, Warmup: 40_000, Measure: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	full, ok := tbl.Get("omnetpp", "STEM")
	if !ok || full <= 0 || full >= 1 {
		t.Fatalf("full-STEM ablation cell %v,%v", full, ok)
	}
	if _, err := stem.ParameterVariants("bogus"); err == nil {
		t.Fatal("bogus parameter accepted")
	}
}

func TestTraceIOPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.trc.gz"
	w, err := stem.CreateTrace(path, stem.TraceHeader{LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	gen := stem.NewGenerator(stem.MustBenchmark("vpr").Workload, testGeom, 5)
	if err := stem.RecordTrace(w, gen, 1000); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := stem.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Header().LineSize != 64 {
		t.Fatal("header lost")
	}
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gen2 := stem.NewGenerator(stem.MustBenchmark("vpr").Workload, testGeom, 5)
	if live := gen2.Next(); live != first {
		t.Fatalf("recorded %+v != live %+v", first, live)
	}
}

func TestParseDinPublicAPI(t *testing.T) {
	refs, err := stem.ParseDin(strings.NewReader("0 1000\n1 2000\n"), 64)
	if err != nil || len(refs) != 2 || !refs[1].Write {
		t.Fatalf("refs %+v err %v", refs, err)
	}
}

func TestExtensionSchemesPublicAPI(t *testing.T) {
	ext := stem.ExtensionSchemes()
	if len(ext) != 3 {
		t.Fatalf("extensions %v", ext)
	}
	for _, name := range ext {
		s, err := stem.NewScheme(name, testGeom, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Access(stem.Access{Block: 42}).Hit {
			t.Fatalf("%s: cold hit", name)
		}
	}
}

func TestExtensionComparisonPublicAPI(t *testing.T) {
	tbl, err := stem.ExtensionComparison(stem.RunConfig{
		Geom: testGeom, Warmup: 30_000, Measure: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get("Geomean", "DRRIP"); !ok {
		t.Fatal("DRRIP geomean missing")
	}
}
